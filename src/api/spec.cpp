#include "api/spec.hpp"

#include <cstring>

#include "api/json.hpp"
#include "base/check.hpp"
#include "base/fault.hpp"
#include "base/strings.hpp"
#include "click/element.hpp"

namespace pp::api {

const char* to_string(ExperimentKind k) {
  switch (k) {
    case ExperimentKind::kSolo:
      return "solo";
    case ExperimentKind::kCorun:
      return "corun";
    case ExperimentKind::kSweep:
      return "sweep";
    case ExperimentKind::kPredict:
      return "predict";
    case ExperimentKind::kPlacementSearch:
      return "placement_search";
  }
  return "?";
}

namespace {

[[nodiscard]] bool kind_from_string(const std::string& s, ExperimentKind& out) {
  for (const ExperimentKind k :
       {ExperimentKind::kSolo, ExperimentKind::kCorun, ExperimentKind::kSweep,
        ExperimentKind::kPredict, ExperimentKind::kPlacementSearch}) {
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool scale_from_string(const std::string& s, Scale& out) {
  for (const Scale v : {Scale::kQuick, Scale::kStandard, Scale::kFull}) {
    if (s == pp::to_string(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool fidelity_from_string(const std::string& s, sim::SimFidelity& out) {
  for (const sim::SimFidelity v :
       {sim::SimFidelity::kExact, sim::SimFidelity::kSampled, sim::SimFidelity::kStreamed}) {
    if (s == sim::to_string(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool mode_from_string(const std::string& s, core::ContentionMode& out) {
  for (const core::ContentionMode v :
       {core::ContentionMode::kCacheOnly, core::ContentionMode::kMemCtrlOnly,
        core::ContentionMode::kBoth}) {
    if (s == core::to_string(v)) {
      out = v;
      return true;
    }
  }
  // Friendlier aliases for hand-written files.
  if (s == "cache") {
    out = core::ContentionMode::kCacheOnly;
    return true;
  }
  if (s == "memctrl") {
    out = core::ContentionMode::kMemCtrlOnly;
    return true;
  }
  if (s == "both") {
    out = core::ContentionMode::kBoth;
    return true;
  }
  return false;
}

constexpr core::SynParams kDefaultSyn{};

}  // namespace

bool flow_type_from_string(const std::string& s, core::FlowType& out) {
  for (const core::FlowType v :
       {core::FlowType::kIp, core::FlowType::kMon, core::FlowType::kFw, core::FlowType::kRe,
        core::FlowType::kVpn, core::FlowType::kSyn, core::FlowType::kSynMax}) {
    if (s == core::to_string(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------------- serialization

std::string ExperimentSpec::to_json() const {
  std::string j = "{\n";
  j += strformat("  \"version\": %d,\n", kSpecSchemaVersion);
  j += strformat("  \"kind\": \"%s\"", to_string(kind));
  if (!name.empty()) j += ",\n  \"name\": " + json_quote(name);
  if (!artifact.empty()) j += ",\n  \"artifact\": " + json_quote(artifact);
  if (scale.has_value()) j += strformat(",\n  \"scale\": \"%s\"", pp::to_string(*scale));
  if (fidelity.has_value()) {
    j += strformat(",\n  \"fidelity\": \"%s\"", sim::to_string(*fidelity));
  }
  if (sample_period_max.has_value()) {
    j += strformat(",\n  \"sample_period_max\": %u", *sample_period_max);
  }
  if (seeds != 0) j += strformat(",\n  \"seeds\": %d", seeds);
  if (seed != 0) {
    j += strformat(",\n  \"seed\": %llu", static_cast<unsigned long long>(seed));
  }
  if (warmup_ms.has_value()) j += ",\n  \"warmup_ms\": " + json_double(*warmup_ms);
  if (measure_ms.has_value()) j += ",\n  \"measure_ms\": " + json_double(*measure_ms);
  if (budget_ms.has_value()) j += ",\n  \"budget_ms\": " + json_double(*budget_ms);
  if (mode != core::ContentionMode::kBoth) {
    j += strformat(",\n  \"mode\": \"%s\"", core::to_string(mode));
  }
  if (flows.empty()) {
    // Artifact specs carry no flows; omit the key so the canonical form
    // re-parses (an explicit empty array would be rejected below).
    j += "\n}\n";
    return j;
  }
  j += ",\n  \"flows\": [";
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const core::FlowSpec& f = flows[i];
    j += i == 0 ? "\n" : ",\n";
    j += strformat("    {\"type\": \"%s\"", core::to_string(f.type));
    if (f.seed != 1) {
      j += strformat(", \"seed\": %llu", static_cast<unsigned long long>(f.seed));
    }
    if (f.batch != 1) j += strformat(", \"batch\": %d", f.batch);
    const bool is_syn = f.type == core::FlowType::kSyn || f.type == core::FlowType::kSynMax;
    if (is_syn || !(f.syn == kDefaultSyn)) {
      j += strformat(", \"reads\": %llu, \"instr\": %llu, \"table_mb\": %llu",
                     static_cast<unsigned long long>(f.syn.reads),
                     static_cast<unsigned long long>(f.syn.instr),
                     static_cast<unsigned long long>(f.syn.table_mb));
    }
    j += "}";
  }
  j += "\n  ]";
  if (!placement.empty()) {
    j += ",\n  \"placement\": [";
    for (std::size_t i = 0; i < placement.size(); ++i) {
      j += i == 0 ? "\n" : ",\n";
      j += strformat("    {\"core\": %d, \"data_domain\": %d}", placement[i].core,
                     placement[i].data_domain);
    }
    j += "\n  ]";
  }
  j += "\n}\n";
  return j;
}

// ------------------------------------------------------------------- parsing

namespace {

struct SpecReader {
  std::string error;

  [[nodiscard]] bool fail(const std::string& msg) {
    if (error.empty()) error = msg;
    return false;
  }

  [[nodiscard]] bool read_u64(const Json& v, const char* field, std::uint64_t& out,
                              std::uint64_t lo, std::uint64_t hi) {
    std::uint64_t parsed = 0;
    if (!v.as_u64(parsed) || parsed < lo || parsed > hi) {
      return fail(strformat("\"%s\" must be an integer in [%llu, %llu]", field,
                            static_cast<unsigned long long>(lo),
                            static_cast<unsigned long long>(hi)));
    }
    out = parsed;
    return true;
  }

  [[nodiscard]] bool read_flow(const Json& v, core::FlowSpec& out) {
    if (!v.is_object()) return fail("\"flows\" entries must be objects");
    bool has_type = false;
    for (const Json::Member& m : v.members()) {
      const std::string& key = m.first;
      const Json& val = m.second;
      if (key == "type") {
        if (!val.is_string() || !flow_type_from_string(val.as_string(), out.type)) {
          return fail("flow \"type\" must be one of IP|MON|FW|RE|VPN|SYN|SYN_MAX");
        }
        has_type = true;
      } else if (key == "seed") {
        if (!read_u64(val, "flow seed", out.seed, 0, ~std::uint64_t{0})) return false;
      } else if (key == "batch") {
        std::uint64_t b = 0;
        if (!read_u64(val, "flow batch", b, 1,
                      static_cast<std::uint64_t>(click::kMaxBatch))) {
          return false;
        }
        out.batch = static_cast<int>(b);
      } else if (key == "reads") {
        if (!read_u64(val, "flow reads", out.syn.reads, 1, 4096)) return false;
      } else if (key == "instr") {
        if (!read_u64(val, "flow instr", out.syn.instr, 0, 1'000'000)) return false;
      } else if (key == "table_mb") {
        if (!read_u64(val, "flow table_mb", out.syn.table_mb, 1, 1024)) return false;
      } else {
        return fail("unknown flow field \"" + key + "\"");
      }
    }
    if (!has_type) return fail("every flow needs a \"type\"");
    return true;
  }

  [[nodiscard]] bool read_placement(const Json& v, core::FlowPlacement& out) {
    if (!v.is_object()) return fail("\"placement\" entries must be objects");
    bool has_core = false;
    for (const Json::Member& m : v.members()) {
      const std::string& key = m.first;
      std::int64_t parsed = 0;
      if (!m.second.as_i64(parsed)) {
        return fail("placement \"" + key + "\" must be an integer");
      }
      if (key == "core") {
        // Machine geometry is not spec-configurable (the simulated platform
        // is the paper's fixed 2 x 6 testbed), so core ids validate against
        // the default config here and again at run time.
        if (parsed < 0 || parsed >= sim::MachineConfig{}.num_cores()) {
          return fail("placement \"core\" out of range");
        }
        out.core = static_cast<int>(parsed);
        has_core = true;
      } else if (key == "data_domain") {
        if (parsed < -1 || parsed >= sim::MachineConfig{}.sockets) {
          return fail("placement \"data_domain\" must be -1 (local) or a socket id");
        }
        out.data_domain = static_cast<int>(parsed);
      } else {
        return fail("unknown placement field \"" + key + "\"");
      }
    }
    if (!has_core) return fail("every placement needs a \"core\"");
    return true;
  }
};

}  // namespace

std::optional<ExperimentSpec> ExperimentSpec::parse(const std::string& json,
                                                    std::string* error) {
  const auto fail = [error](const std::string& msg) -> std::optional<ExperimentSpec> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  if (pp::fault("spec.parse")) return fail("injected spec parse failure (PP_FAULTS)");

  std::string jerr;
  const std::optional<Json> doc = Json::parse(json, &jerr);
  if (!doc.has_value()) return fail("spec is not valid JSON: " + jerr);
  if (!doc->is_object()) return fail("spec must be a JSON object");

  SpecReader r;
  ExperimentSpec spec;
  bool has_version = false;
  bool has_kind = false;
  bool has_flows = false;
  bool has_mode = false;
  bool has_seed = false;

  for (const Json::Member& m : doc->members()) {
    const std::string& key = m.first;
    const Json& v = m.second;
    if (key == "version") {
      std::uint64_t ver = 0;
      if (!v.as_u64(ver) || ver != static_cast<std::uint64_t>(kSpecSchemaVersion)) {
        return fail(strformat("unsupported spec \"version\" (this build understands %d)",
                              kSpecSchemaVersion));
      }
      has_version = true;
    } else if (key == "kind") {
      if (!v.is_string() || !kind_from_string(v.as_string(), spec.kind)) {
        return fail("\"kind\" must be one of solo|corun|sweep|predict|placement_search");
      }
      has_kind = true;
    } else if (key == "name") {
      if (!v.is_string()) return fail("\"name\" must be a string");
      spec.name = v.as_string();
    } else if (key == "artifact") {
      if (!v.is_string()) return fail("\"artifact\" must be a string");
      spec.artifact = v.as_string();
    } else if (key == "scale") {
      Scale s = Scale::kStandard;
      if (!v.is_string() || !scale_from_string(v.as_string(), s)) {
        return fail("\"scale\" must be one of quick|standard|full");
      }
      spec.scale = s;
    } else if (key == "fidelity") {
      sim::SimFidelity f = sim::SimFidelity::kExact;
      if (!v.is_string() || !fidelity_from_string(v.as_string(), f)) {
        return fail("\"fidelity\" must be one of exact|sampled|streamed");
      }
      spec.fidelity = f;
    } else if (key == "sample_period_max") {
      std::uint64_t p = 0;
      if (!r.read_u64(v, "sample_period_max", p, 2, 64) || (p & (p - 1)) != 0) {
        return fail("\"sample_period_max\" must be a power of two in [2, 64]");
      }
      spec.sample_period_max = static_cast<std::uint32_t>(p);
    } else if (key == "seeds") {
      std::uint64_t s = 0;
      if (!r.read_u64(v, "seeds", s, 1, 16)) return fail(r.error);
      spec.seeds = static_cast<int>(s);
    } else if (key == "seed") {
      if (!r.read_u64(v, "seed", spec.seed, 1, ~std::uint64_t{0})) return fail(r.error);
      has_seed = true;
    } else if (key == "warmup_ms") {
      if (!v.is_number() || v.as_double() < 0 || v.as_double() > 1000) {
        return fail("\"warmup_ms\" must be a number in [0, 1000]");
      }
      spec.warmup_ms = v.as_double();
    } else if (key == "measure_ms") {
      if (!v.is_number() || v.as_double() < 0 || v.as_double() > 1000) {
        return fail("\"measure_ms\" must be a number in [0, 1000]");
      }
      spec.measure_ms = v.as_double();
    } else if (key == "budget_ms") {
      if (!v.is_number() || !(v.as_double() > 0) || v.as_double() > 10000) {
        return fail("\"budget_ms\" must be a number in (0, 10000]");
      }
      spec.budget_ms = v.as_double();
    } else if (key == "mode") {
      if (!v.is_string() || !mode_from_string(v.as_string(), spec.mode)) {
        return fail("\"mode\" must be one of cache-only|memctrl-only|cache+memctrl "
                    "(aliases: cache, memctrl, both)");
      }
      has_mode = true;
    } else if (key == "flows") {
      if (!v.is_array()) return fail("\"flows\" must be an array");
      for (const Json& item : v.items()) {
        core::FlowSpec f;
        if (!r.read_flow(item, f)) return fail(r.error);
        spec.flows.push_back(f);
      }
      has_flows = true;
    } else if (key == "placement") {
      if (!v.is_array()) return fail("\"placement\" must be an array");
      for (const Json& item : v.items()) {
        core::FlowPlacement p;
        if (!r.read_placement(item, p)) return fail(r.error);
        spec.placement.push_back(p);
      }
    } else {
      return fail("unknown spec field \"" + key + "\"");
    }
  }

  if (!has_version) return fail("spec needs a \"version\" field");
  if (!has_kind) return fail("spec needs a \"kind\" field");

  // ------------------------------------------------- cross-field validation
  if (!spec.artifact.empty()) {
    if (spec.artifact != "fig4" && spec.artifact != "table1") {
      return fail("unknown artifact \"" + spec.artifact + "\" (known: fig4, table1)");
    }
    if (!spec.flows.empty() || !spec.placement.empty() || has_mode || has_seed ||
        spec.warmup_ms.has_value() || spec.measure_ms.has_value() ||
        spec.budget_ms.has_value()) {
      return fail("artifact specs configure only scale/fidelity/sample_period_max/seeds");
    }
    return spec;
  }

  if (!has_flows || spec.flows.empty()) return fail("spec needs a non-empty \"flows\" array");

  const bool is_mix_kind =
      spec.kind == ExperimentKind::kSolo || spec.kind == ExperimentKind::kCorun;
  if (!spec.placement.empty()) {
    if (spec.kind != ExperimentKind::kCorun) {
      return fail("\"placement\" applies only to corun specs");
    }
    if (spec.placement.size() != spec.flows.size()) {
      return fail("\"placement\" must be parallel to \"flows\"");
    }
  }
  if (has_mode && spec.kind != ExperimentKind::kSweep) {
    return fail("\"mode\" applies only to sweep specs");
  }
  if (!is_mix_kind) {
    if (spec.warmup_ms.has_value() || spec.measure_ms.has_value()) {
      return fail("\"warmup_ms\"/\"measure_ms\" apply only to solo/corun specs (sweep, "
                  "predict and placement_search use the scale's standard windows)");
    }
    if (has_seed) {
      return fail("\"seed\" applies only to solo/corun specs (the other kinds use the "
                  "profilers' fixed seed schedules)");
    }
  }
  if (spec.kind == ExperimentKind::kCorun &&
      spec.flows.size() > static_cast<std::size_t>(sim::MachineConfig{}.num_cores())) {
    return fail("corun specs fit at most one flow per core");
  }
  if (spec.kind == ExperimentKind::kPlacementSearch &&
      spec.flows.size() != static_cast<std::size_t>(sim::MachineConfig{}.num_cores())) {
    return fail(strformat("placement_search needs exactly %d flows (one per core)",
                          sim::MachineConfig{}.num_cores()));
  }
  return spec;
}

// ------------------------------------------------------------------ lowering

SessionOptions apply_spec(const ExperimentSpec& spec, SessionOptions base) {
  if (spec.scale.has_value()) base.scale = *spec.scale;
  if (spec.fidelity.has_value()) base.fidelity = *spec.fidelity;
  if (spec.sample_period_max.has_value()) base.sample_period_max = spec.sample_period_max;
  if (spec.budget_ms.has_value()) base.run_budget_ms = *spec.budget_ms;
  return base;
}

std::vector<core::Scenario> lower_spec(const ExperimentSpec& spec, const core::Testbed& tb) {
  std::vector<core::Scenario> out;
  const int seeds = spec.seeds > 0 ? spec.seeds : default_seeds(tb.scale());
  if (spec.kind == ExperimentKind::kSolo) {
    // With no explicit seed, this is exactly SoloProfiler::plan's schedule,
    // so the facade and the C++ profiling path hit the same ProfileStore
    // content keys (and Table-1-style profiles are shared). An explicit
    // seed opts out of that sharing and runs base + i like corun.
    for (const core::FlowSpec& f : spec.flows) {
      for (int s = 0; s < seeds; ++s) {
        const std::uint64_t run_seed =
            spec.seed == 0 ? static_cast<std::uint64_t>(s + 1) * 7919
                           : spec.seed + static_cast<std::uint64_t>(s);
        core::RunConfig cfg = tb.configure({f}, run_seed);
        if (spec.warmup_ms.has_value()) cfg.warmup_ms = *spec.warmup_ms;
        if (spec.measure_ms.has_value()) cfg.measure_ms = *spec.measure_ms;
        out.push_back(core::Scenario::of(tb, cfg));
      }
    }
    return out;
  }
  PP_CHECK(spec.kind == ExperimentKind::kCorun);
  const std::uint64_t base_seed = spec.seed == 0 ? 1 : spec.seed;
  for (int s = 0; s < seeds; ++s) {
    core::RunConfig cfg = tb.configure(spec.flows, base_seed + static_cast<std::uint64_t>(s));
    if (!spec.placement.empty()) cfg.placement = spec.placement;
    if (spec.warmup_ms.has_value()) cfg.warmup_ms = *spec.warmup_ms;
    if (spec.measure_ms.has_value()) cfg.measure_ms = *spec.measure_ms;
    out.push_back(core::Scenario::of(tb, cfg));
  }
  return out;
}

}  // namespace pp::api
