#include "api/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <thread>

extern char** environ;

namespace pp::api {

namespace {

void warn(const char* fmt, const char* value) {
  std::fprintf(stderr, "pp: warning: ");
  std::fprintf(stderr, fmt, value);  // NOLINT: fmt is a literal with one %s
  std::fprintf(stderr, "\n");
}

/// The complete set of environment variables the platform recognizes. Names
/// under the audited prefixes that are not listed here earn a warning — a
/// typo like SIM_FIDELTY should not silently run the default configuration.
constexpr const char* kKnownVars[] = {
    "REPRO_SCALE",    "SIM_FIDELITY",  "SIM_SAMPLE_PERIOD_MAX",
    "SWEEP_THREADS",  "PROFILE_CACHE", "PROFILE_CACHE_RO",
    "PP_RUN_BUDGET",  "PP_FAULTS",
};

constexpr const char* kAuditedPrefixes[] = {"SIM_", "PP_", "SWEEP_", "REPRO_",
                                            "PROFILE_CACHE"};

void audit_unknown_names() {
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string_view entry(*e);
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view name = entry.substr(0, eq);
    bool audited = false;
    for (const char* prefix : kAuditedPrefixes) {
      if (name.substr(0, std::strlen(prefix)) == prefix) {
        audited = true;
        break;
      }
    }
    if (!audited) continue;
    bool known = false;
    for (const char* k : kKnownVars) {
      if (name == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      warn("unrecognized environment variable %s (known: REPRO_SCALE, "
           "SIM_FIDELITY, SIM_SAMPLE_PERIOD_MAX, SWEEP_THREADS, "
           "PROFILE_CACHE, PROFILE_CACHE_RO, PP_RUN_BUDGET, PP_FAULTS)",
           std::string(name).c_str());
    }
  }
}

[[nodiscard]] bool parse_u32(const char* s, std::uint32_t& out) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0' || v > 0xffffffffUL) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

SessionOptions parse_env() {
  SessionOptions o;
  audit_unknown_names();

  if (const char* v = std::getenv("REPRO_SCALE"); v != nullptr) {
    if (std::strcmp(v, "quick") == 0) {
      o.scale = Scale::kQuick;
    } else if (std::strcmp(v, "full") == 0) {
      o.scale = Scale::kFull;
    } else if (std::strcmp(v, "standard") != 0) {
      warn("unrecognized REPRO_SCALE=%s (expected quick|standard|full); "
           "running at the standard scale", v);
    }
  }

  if (const char* v = std::getenv("SIM_FIDELITY"); v != nullptr) {
    if (std::strcmp(v, "sampled") == 0) {
      o.fidelity = sim::SimFidelity::kSampled;
    } else if (std::strcmp(v, "streamed") == 0) {
      o.fidelity = sim::SimFidelity::kStreamed;
    } else if (std::strcmp(v, "exact") != 0) {
      warn("unrecognized SIM_FIDELITY=%s (expected exact|sampled|streamed); "
           "running the exact tier", v);
    }
  }

  if (const char* v = std::getenv("SIM_SAMPLE_PERIOD_MAX"); v != nullptr) {
    std::uint32_t parsed = 0;
    if (parse_u32(v, parsed) && parsed >= 2 && parsed <= 64 &&
        (parsed & (parsed - 1)) == 0) {
      o.sample_period_max = parsed;
    } else {
      warn("invalid SIM_SAMPLE_PERIOD_MAX=%s (expected a power of two in "
           "[2, 64]); using the fidelity tier's default ceiling", v);
    }
  }

  if (const char* v = std::getenv("SWEEP_THREADS"); v != nullptr) {
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || n < 1) {
      warn("invalid SWEEP_THREADS=%s (expected an integer >= 1); "
           "running single-threaded", v);
      o.threads = 1;
    } else {
      o.threads = n > 64 ? 64 : static_cast<int>(n);
    }
  } else {
    const unsigned hw = std::thread::hardware_concurrency();
    o.threads = hw == 0 ? 1 : (hw > 8 ? 8 : static_cast<int>(hw));
  }

  if (const char* v = std::getenv("PROFILE_CACHE"); v != nullptr) o.cache_dir = v;
  if (const char* v = std::getenv("PROFILE_CACHE_RO"); v != nullptr) o.cache_dir_ro = v;

  if (const char* v = std::getenv("PP_RUN_BUDGET"); v != nullptr) {
    char* end = nullptr;
    const double ms = std::strtod(v, &end);
    if (end == v || *end != '\0' || !(ms > 0)) {
      warn("invalid PP_RUN_BUDGET=%s (expected simulated milliseconds > 0); "
           "running without a budget", v);
    } else {
      o.run_budget_ms = ms;
    }
  }
  return o;
}

}  // namespace

SessionOptions SessionOptions::from_env() {
  // One snapshot per process: the parse (and its warnings) run exactly once,
  // and every shim below sees the same consistent configuration.
  static const SessionOptions snapshot = parse_env();
  return snapshot;
}

std::uint32_t resolve_sample_period_max(sim::SimFidelity fidelity,
                                        std::uint32_t sample_period,
                                        std::optional<std::uint32_t> requested) {
  // The streamed tier is the "speed tier": it defaults to adaptive widening
  // up to period 16 unless the operator pins the ceiling explicitly
  // (fidelity-first: ceiling 32 pushes cache-friendly chains like MON to
  // ~-7% pps, see docs/simulation_modes.md; 16 keeps every realistic chain
  // within ~3%).
  std::uint32_t v = fidelity == sim::SimFidelity::kStreamed ? 16U : sample_period;
  if (requested.has_value() && *requested >= sample_period && *requested <= 64 &&
      (*requested & (*requested - 1)) == 0) {
    v = *requested;
  }
  return v;
}

int default_seeds(Scale s) { return s == Scale::kFull ? 3 : 1; }

}  // namespace pp::api
