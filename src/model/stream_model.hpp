// Statistical model of payload-streaming bursts (SimFidelity::kStreamed).
//
// Payload traffic — RE store appends and match verification, AES table
// residency and payload write-back — is issued by the apps as
// sim::StreamBurst bursts of independent line touches over a handful of
// allocations. Under kStreamed the memory system replays only the tracked
// residue class (and every pinned line) of such a burst exactly, and serves
// the rest *per burst*: one calibrated level-split draw per (allocation,
// burst) group instead of one tag-store walk per line.
//
// Unlike SetSampleEstimator (which backs the per-access sampled path and
// never sees L1 outcomes because the L1 replays exactly for every access),
// the stream model owns the full split including the L1: skipping the
// per-line L1 replay is exactly where the streamed tier's speedup comes
// from, and streaming traffic is the one access class for which that is
// statistically safe — payload lines are touched once and carry no per-line
// recency worth replaying (the structural argument that forced exact L1
// replay in the sampled tier does not apply).
//
// Determinism: cells are plain counters; draws use systematic sampling —
// cumulative expected counts floor-rounded against a single per-burst
// uniform offset — so a fixed sample_seed reproduces every burst split
// bit-identically, and the rounding error per burst is < 1 line per level.
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.hpp"

namespace pp::model {

class StreamModel {
 public:
  /// Outcome levels of one streamed line, in hierarchy order.
  enum Level : int { kL1Hit = 0, kL2Hit = 1, kL3Hit = 2, kMiss = 3 };

  /// Level-split of one modeled burst group of k lines:
  /// l1 + l2 + l3 + miss == k, xcore <= l3, wb <= miss.
  struct Split {
    std::uint64_t l1 = 0;
    std::uint64_t l2 = 0;
    std::uint64_t l3 = 0;
    std::uint64_t miss = 0;
    std::uint64_t xcore = 0;  // L3 hits served by a dirty sibling line
    std::uint64_t wb = 0;     // misses whose eviction posts a writeback
  };

  StreamModel(int cores, std::uint64_t seed);

  /// Record the outcome of one exactly-replayed streamed line (a tracked
  /// residue-class line of a burst) by `core` in `bucket`.
  void observe(int core, std::uint32_t bucket, int level, bool xcore);

  /// Record a dirty writeback caused by a replayed streamed miss of `core`
  /// (fed from the eviction path, like SetSampleEstimator's).
  void observe_writeback(int core, std::uint32_t bucket);

  /// Draw the level split for `k` modeled lines of one burst group.
  [[nodiscard]] Split split(int core, std::uint32_t bucket, std::uint64_t k);

  /// Drop calibration back to the prior (keeps the RNG streams); called with
  /// the link-backlog/estimator resets after the artificial prewarm phase.
  void reset_counts();

  /// Current estimate of P(level) for a (core, bucket) cell (tests).
  [[nodiscard]] double level_probability(int core, std::uint32_t bucket, int level) const;

  /// Shares SetSampleEstimator's bucket space (one cell per allocation).
  static constexpr std::uint32_t kBuckets = 128;

 private:
  /// ~1k-observation decay window and adaptive threshold-rebuild cadence,
  /// mirroring SetSampleEstimator: the model follows phase changes instead
  /// of averaging the run, and the first draws already reflect the first
  /// replayed burst lines.
  static constexpr std::uint64_t kDecayAt = 1ULL << 10;
  static constexpr std::uint32_t kRebuildEvery = 64;

  struct Cell {
    // Outcome counts over all four levels, seeded with a minimal uniform
    // prior that washes out after a handful of tracked lines.
    std::uint64_t n[4] = {1, 1, 1, 1};
    std::uint64_t xcore = 0;  // among kL3Hit outcomes
    std::uint64_t wb = 0;     // among kMiss outcomes
    std::uint32_t since_rebuild = 0;
    std::uint32_t rebuild_interval = 1;
    // Cumulative level thresholds scaled to 2^32: T[0] = P(L1),
    // T[1] = P(L1)+P(L2), T[2] = P(L1)+P(L2)+P(L3).
    std::uint64_t t[3] = {0, 0, 0};
    std::uint64_t t_xcore = 0;
    std::uint64_t t_wb = 0;
  };

  void rebuild(Cell& c);
  [[nodiscard]] Cell& cell(int core, std::uint32_t bucket) {
    return cells_[static_cast<std::size_t>(core) * kBuckets + bucket];
  }

  std::vector<Cell> cells_;  // cores * kBuckets
  std::vector<Pcg32> rng_;   // one independent stream per core
};

}  // namespace pp::model
