// Analytical models from the paper.
//
// 1. Equation 1 (Section 3.3): the performance drop of a flow that achieved
//    h cache hits/sec solo, when a fraction kappa of those hits become
//    misses, each costing an extra delta seconds:
//
//        drop = 1 / (1 + 1/(delta * kappa * h))
//
//    With kappa = 1 this bounds the worst-case drop (Figure 6).
//
// 2. The appendix cache-sharing model: a target flow T sharing a
//    direct-mapped cache of C lines with competitors issuing Rc refs/sec;
//    T achieves Ht hits/sec solo over W cacheable chunks. Each competing
//    reference evicts a given line with probability pev = 1/C; between two
//    target references to the same chunk, the number of competing
//    references Z is geometric with success probability
//    pt = (Ht/W) / (Ht/W + Rc). Then
//
//        P(hit) = pt / (1 - (1 - pev)(1 - pt))
//
//    and the hit-to-miss conversion rate is 1 - P(hit) (Figure 7's
//    "estimated" curve). The paper stresses this explains the *shape*
//    (sharp rise then plateau), not exact values.
//
// 3. SetSampleEstimator: the online calibrator behind the simulator's
//    SimFidelity::kSampled mode. The classic set-sampling observation is
//    that a set-associative cache's sets are independent: restricting full
//    tag replay to 1/N of the sets costs nothing in fidelity *for those
//    sets*, and their hit/miss mix is an unbiased estimate of the whole
//    cache's. The estimator aggregates the outcomes of the replayed
//    ("tracked") accesses into per-(core, address-bucket) level
//    probabilities and serves every untracked access by a deterministic
//    pseudo-random draw from that distribution — effectively scaling the
//    sampled sets' counters up to the full access stream. Bucketing by
//    address (1 MB granularity) keeps per-structure behaviour distinct
//    (a trie's top levels vs a uniformly hammered flow table), which the
//    Figure 7 per-function conversion curves need.
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.hpp"

namespace pp::model {

/// Equation 1. `hits_per_sec` is the solo h; `delta_sec` the extra
/// miss-vs-hit latency (the paper uses 43.75 ns); `kappa` in [0, 1].
[[nodiscard]] double performance_drop(double hits_per_sec, double delta_sec, double kappa);

/// Worst-case drop (kappa = 1), as plotted in Figure 6.
[[nodiscard]] double worst_case_drop(double hits_per_sec, double delta_sec);

struct CacheModelParams {
  double cache_lines = 0;        // C
  double target_chunks = 0;      // W
  double target_hits_per_sec = 0;   // Ht (solo)
  double competing_refs_per_sec = 0;  // Rc
};

/// Appendix model: probability that a solo-run hit stays a hit.
[[nodiscard]] double hit_probability(const CacheModelParams& p);

/// Hit-to-miss conversion rate, 1 - P(hit).
[[nodiscard]] double conversion_rate(const CacheModelParams& p);

/// Model-derived drop curve point: feed the model's conversion rate into
/// Equation 1 (used to sanity-check the shape of Figure 5 analytically).
[[nodiscard]] double model_drop(const CacheModelParams& p, double delta_sec);

/// Online per-level hit-rate estimator for set-sampled simulation (see file
/// header, item 3). One instance belongs to one simulated machine; all state
/// is deterministic, so sampled runs are bit-reproducible for a fixed seed.
class SetSampleEstimator {
 public:
  /// Access outcome levels, in hierarchy order.
  enum Level : int { kL1Hit = 0, kL2Hit = 1, kL3Hit = 2, kMiss = 3 };

  struct Sampled {
    int level = kMiss;
    bool xcore = false;      // L3 hit served by a dirty sibling line
    bool writeback = false;  // miss whose eviction posts a dirty writeback
  };

  SetSampleEstimator(int cores, std::uint64_t seed);

  /// Record the outcome of one exactly-replayed access by `core` to a line
  /// in `bucket` (see bucket_of). `widen_eligible` marks observations from
  /// allocations large enough for adaptive widening (MemorySystem applies
  /// the size gate); ineligible observations calibrate the cell but never
  /// feed the widening confidence.
  void observe(int core, std::uint32_t bucket, int level, bool xcore,
               bool widen_eligible = true);

  /// Record a dirty writeback caused by a replayed demand miss of `core`.
  void observe_writeback(int core, std::uint32_t bucket);

  /// Draw the L2/L3/memory split for a modeled access that missed the
  /// (exactly replayed) L1. Never returns kL1Hit.
  [[nodiscard]] Sampled sample(int core, std::uint32_t bucket);

  /// Fallback address bucket of a line (4 MB granularity) for memory
  /// systems with no bound AddressSpace. The simulator proper buckets by
  /// allocation (AddressSpace::structure_of_line), so each application
  /// structure calibrates its own cell.
  [[nodiscard]] static std::uint32_t bucket_of(std::uint64_t line) noexcept {
    return static_cast<std::uint32_t>(line >> 16) & (kBuckets - 1);
  }

  /// Drop all calibration back to the prior (keeps the RNG streams). Used
  /// between artificial phases — the serial prewarm pass streams every
  /// structure once, which is a pure compulsory-miss signal that badly
  /// misrepresents steady state. Adaptive-period confidence resets too:
  /// widened allocations fall back to the base period and re-converge.
  void reset_counts();

  /// Current estimate of P(level) for a (core, bucket) cell (tests).
  [[nodiscard]] double level_probability(int core, std::uint32_t bucket, int level) const;

  // --- adaptive sampling period (MachineConfig::sample_period_max) --------
  //
  // Calibration confidence is tracked per *allocation* (bucket), aggregated
  // across cores: the replayed-residue decision must be a pure function of
  // the line address at any instant — per-core decisions would let one core
  // replay a shared-L3 set that another core models — so the widening state
  // cannot live in the per-(core, bucket) cells that serve the draws. A
  // bucket widens one step (its effective period doubles, up to
  // base << max_shift) each time every level probability of its aggregated
  // tracked split carries a tight confidence interval (Wald half-width
  // < kCiTol at >= kConfMinObs decayed observations) AND the split has held
  // stable (within kDriftTol absolute) since the reference recorded at the
  // last widening. Widening is monotone between calibration resets: a
  // detected drift (a competitor ramping up, a phase change) holds the
  // period and rebases the reference instead of narrowing, because
  // re-tracking residue classes whose sets went stale would replay a
  // compulsory-miss refill storm (measured: oscillating 2-3x miss
  // inflation). The per-cell online calibration carries phase tracking, as
  // it does at the base period. All arithmetic is integer fixed-point:
  // bit-reproducible.

  /// Enable widening up to `max_shift` doublings (0 = disabled, the default).
  void enable_adaptive(std::uint32_t max_shift);

  /// Extra period doublings currently granted to `bucket` (0 when adaptive
  /// widening is disabled or the bucket has not converged).
  [[nodiscard]] std::uint32_t period_shift(std::uint32_t bucket) const {
    return conf_[bucket].shift;
  }

  /// Lifetime adaptive transitions (diagnostic/test use): period widenings
  /// granted, and confident-window drift detections (which hold the period
  /// and rebase the stability reference; see evaluate_confidence for why
  /// drift never narrows mid-run).
  [[nodiscard]] std::uint64_t widen_events() const { return widen_events_; }
  [[nodiscard]] std::uint64_t drift_events() const { return drift_events_; }

  static constexpr std::uint32_t kBuckets = 128;

 private:
  /// Outcome counts halve once their sum reaches this, giving the estimate
  /// a ~1k-observation memory so it tracks phase changes — the prewarm
  /// pass's compulsory misses, warmup convergence, a competitor ramping —
  /// within a fraction of a warmup window instead of averaging the run.
  static constexpr std::uint64_t kDecayAt = 1ULL << 10;
  /// Steady-state threshold-rebuild cadence. Young cells rebuild after
  /// every observation, doubling the interval up to this, so the first
  /// modeled draws already reflect the first replayed outcomes instead of
  /// the prior.
  static constexpr std::uint32_t kRebuildEvery = 64;

  struct Cell {
    // Tracked-outcome counts over the L1-missing levels (the simulator
    // replays the L1 exactly for every line, so kL1Hit is never observed
    // or drawn), seeded with a minimal uniform prior that washes out after
    // a handful of tracked accesses thanks to the adaptive rebuild.
    std::uint64_t n[4] = {0, 1, 1, 1};
    std::uint64_t xcore = 0;  // among kL3Hit outcomes
    std::uint64_t wb = 0;     // among kMiss outcomes
    std::uint32_t since_rebuild = 0;
    std::uint32_t rebuild_interval = 1;  // doubles up to kRebuildEvery
    // Cumulative L1-miss-split thresholds scaled to 2^32
    // (draw u32: < t[0] => L2 hit, < t[1] => L3 hit, else miss).
    std::uint64_t t[2] = {0, 0};
    std::uint64_t t_xcore = 0;
    std::uint64_t t_wb = 0;
  };

  /// Confidence state of one bucket's cross-core aggregated tracked split.
  struct BucketConf {
    std::uint64_t n[3] = {0, 0, 0};  // L2 hit / L3 hit / miss tracked counts
    std::uint32_t since_eval = 0;
    std::uint32_t shift = 0;         // extra period doublings granted
    std::uint32_t streak = 0;        // consecutive stable+confident windows
    bool has_ref = false;
    std::uint16_t ref[3] = {0, 0, 0};  // split at last stability rebase, 16-bit fixed point
  };

  /// Confidence-window tuning. kConfDecayAt bounds the window (so the CI
  /// follows phase changes), kCiTol is the Wald half-width every level must
  /// beat to widen (z = 2), kDriftTol the absolute drift that narrows.
  static constexpr std::uint64_t kConfDecayAt = 1ULL << 12;
  static constexpr std::uint32_t kConfEvalEvery = 256;
  static constexpr std::uint64_t kConfMinObs = 512;
  // kCiTol = 0.025: require 4 * p(1-p) / n < kCiTol^2, in integers:
  // 4 * ni * (n - ni) * kCiTolInvSq < n^3  with kCiTolInvSq = 1/0.025^2.
  static constexpr std::uint64_t kCiTolInvSq = 1600;
  // 0.05 in 16-bit fixed point: drift beyond this HOLDS the period and
  // rebases the stability reference (never narrows; see evaluate_confidence).
  static constexpr std::uint32_t kDriftTol16 = 3277;
  static constexpr std::uint32_t kStableStreak = 4;   // windows before each widening

  void rebuild(Cell& c);
  void evaluate_confidence(BucketConf& b);
  [[nodiscard]] Cell& cell(int core, std::uint32_t bucket) {
    return cells_[static_cast<std::size_t>(core) * kBuckets + bucket];
  }

  std::vector<Cell> cells_;  // cores * kBuckets
  std::vector<Pcg32> rng_;   // one independent stream per core
  std::vector<BucketConf> conf_ = std::vector<BucketConf>(kBuckets);
  std::uint32_t max_shift_ = 0;  // 0 = adaptive widening disabled
  std::uint64_t widen_events_ = 0;
  std::uint64_t drift_events_ = 0;
};

}  // namespace pp::model
