// Analytical models from the paper.
//
// 1. Equation 1 (Section 3.3): the performance drop of a flow that achieved
//    h cache hits/sec solo, when a fraction kappa of those hits become
//    misses, each costing an extra delta seconds:
//
//        drop = 1 / (1 + 1/(delta * kappa * h))
//
//    With kappa = 1 this bounds the worst-case drop (Figure 6).
//
// 2. The appendix cache-sharing model: a target flow T sharing a
//    direct-mapped cache of C lines with competitors issuing Rc refs/sec;
//    T achieves Ht hits/sec solo over W cacheable chunks. Each competing
//    reference evicts a given line with probability pev = 1/C; between two
//    target references to the same chunk, the number of competing
//    references Z is geometric with success probability
//    pt = (Ht/W) / (Ht/W + Rc). Then
//
//        P(hit) = pt / (1 - (1 - pev)(1 - pt))
//
//    and the hit-to-miss conversion rate is 1 - P(hit) (Figure 7's
//    "estimated" curve). The paper stresses this explains the *shape*
//    (sharp rise then plateau), not exact values.
#pragma once

#include <cstdint>

namespace pp::model {

/// Equation 1. `hits_per_sec` is the solo h; `delta_sec` the extra
/// miss-vs-hit latency (the paper uses 43.75 ns); `kappa` in [0, 1].
[[nodiscard]] double performance_drop(double hits_per_sec, double delta_sec, double kappa);

/// Worst-case drop (kappa = 1), as plotted in Figure 6.
[[nodiscard]] double worst_case_drop(double hits_per_sec, double delta_sec);

struct CacheModelParams {
  double cache_lines = 0;        // C
  double target_chunks = 0;      // W
  double target_hits_per_sec = 0;   // Ht (solo)
  double competing_refs_per_sec = 0;  // Rc
};

/// Appendix model: probability that a solo-run hit stays a hit.
[[nodiscard]] double hit_probability(const CacheModelParams& p);

/// Hit-to-miss conversion rate, 1 - P(hit).
[[nodiscard]] double conversion_rate(const CacheModelParams& p);

/// Model-derived drop curve point: feed the model's conversion rate into
/// Equation 1 (used to sanity-check the shape of Figure 5 analytically).
[[nodiscard]] double model_drop(const CacheModelParams& p, double delta_sec);

}  // namespace pp::model
