#include "model/stream_model.hpp"

#include "base/check.hpp"

namespace pp::model {

StreamModel::StreamModel(int cores, std::uint64_t seed) {
  PP_CHECK(cores >= 1);
  cells_.resize(static_cast<std::size_t>(cores) * kBuckets);
  for (Cell& c : cells_) rebuild(c);
  // Distinct stream family from SetSampleEstimator's (which seeds directly
  // from `seed`): the two models must not replay each other's draws.
  std::uint64_t s = seed ^ 0x94d049bb133111ebULL;
  rng_.reserve(static_cast<std::size_t>(cores));
  for (int i = 0; i < cores; ++i) {
    const std::uint64_t a = splitmix64(s);
    const std::uint64_t b = splitmix64(s);
    rng_.emplace_back(a, b);
  }
}

void StreamModel::rebuild(Cell& c) {
  const std::uint64_t total = c.n[0] + c.n[1] + c.n[2] + c.n[3];
  c.t[0] = (c.n[kL1Hit] << 32U) / total;
  c.t[1] = ((c.n[kL1Hit] + c.n[kL2Hit]) << 32U) / total;
  c.t[2] = ((c.n[kL1Hit] + c.n[kL2Hit] + c.n[kL3Hit]) << 32U) / total;
  c.t_xcore = c.n[kL3Hit] > 0 ? (c.xcore << 32U) / c.n[kL3Hit] : 0;
  c.t_wb = c.n[kMiss] > 0 ? (c.wb << 32U) / c.n[kMiss] : 0;
  c.since_rebuild = 0;
}

void StreamModel::observe(int core, std::uint32_t bucket, int level, bool xcore) {
  Cell& c = cell(core, bucket);
  c.n[static_cast<std::size_t>(level)] += 1;
  if (xcore) c.xcore += 1;
  if (c.n[0] + c.n[1] + c.n[2] + c.n[3] >= kDecayAt) {
    for (std::uint64_t& v : c.n) v = (v + 1) / 2;
    c.xcore = (c.xcore + 1) / 2;
    c.wb = (c.wb + 1) / 2;
  }
  if (++c.since_rebuild >= c.rebuild_interval) {
    if (c.rebuild_interval < kRebuildEvery) c.rebuild_interval *= 2;
    rebuild(c);
  }
}

void StreamModel::observe_writeback(int core, std::uint32_t bucket) {
  Cell& c = cell(core, bucket);
  if (c.wb < c.n[kMiss]) c.wb += 1;  // a writeback accompanies a miss
}

StreamModel::Split StreamModel::split(int core, std::uint32_t bucket, std::uint64_t k) {
  Split s;
  if (k == 0) return s;
  Cell& c = cell(core, bucket);
  Pcg32& rng = rng_[static_cast<std::size_t>(core)];
  // Systematic sampling: cumulative expected counts k*T[i]/2^32, each
  // floor-rounded with the same uniform offset u, preserve ordering and
  // total and are unbiased over bursts.
  const std::uint64_t u = rng.next();
  const std::uint64_t c1 = (k * c.t[0] + u) >> 32U;
  const std::uint64_t c2 = (k * c.t[1] + u) >> 32U;
  const std::uint64_t c3 = (k * c.t[2] + u) >> 32U;
  s.l1 = c1;
  s.l2 = c2 - c1;
  s.l3 = c3 - c2;
  s.miss = k - c3;
  if (s.l3 > 0) s.xcore = (s.l3 * c.t_xcore + static_cast<std::uint64_t>(rng.next())) >> 32U;
  if (s.miss > 0) s.wb = (s.miss * c.t_wb + static_cast<std::uint64_t>(rng.next())) >> 32U;
  return s;
}

void StreamModel::reset_counts() {
  for (Cell& c : cells_) {
    c = Cell{};
    rebuild(c);
  }
}

double StreamModel::level_probability(int core, std::uint32_t bucket, int level) const {
  const Cell& c = cells_[static_cast<std::size_t>(core) * kBuckets + bucket];
  const double total = static_cast<double>(c.n[0] + c.n[1] + c.n[2] + c.n[3]);
  return static_cast<double>(c.n[static_cast<std::size_t>(level)]) / total;
}

}  // namespace pp::model
