#include "model/cache_model.hpp"

#include "base/check.hpp"

namespace pp::model {

double performance_drop(double hits_per_sec, double delta_sec, double kappa) {
  PP_CHECK(hits_per_sec >= 0 && delta_sec >= 0);
  PP_CHECK(kappa >= 0 && kappa <= 1);
  const double x = delta_sec * kappa * hits_per_sec;
  if (x <= 0) return 0.0;
  return 1.0 / (1.0 + 1.0 / x);
}

double worst_case_drop(double hits_per_sec, double delta_sec) {
  return performance_drop(hits_per_sec, delta_sec, 1.0);
}

double hit_probability(const CacheModelParams& p) {
  PP_CHECK(p.cache_lines > 0 && p.target_chunks > 0);
  PP_CHECK(p.target_hits_per_sec >= 0 && p.competing_refs_per_sec >= 0);
  if (p.competing_refs_per_sec <= 0) return 1.0;
  const double pev = 1.0 / p.cache_lines;
  const double per_chunk_rate = p.target_hits_per_sec / p.target_chunks;
  const double pt = per_chunk_rate / (per_chunk_rate + p.competing_refs_per_sec);
  if (pt <= 0) return 0.0;
  return pt / (1.0 - (1.0 - pev) * (1.0 - pt));
}

double conversion_rate(const CacheModelParams& p) { return 1.0 - hit_probability(p); }

double model_drop(const CacheModelParams& p, double delta_sec) {
  return performance_drop(p.target_hits_per_sec, delta_sec, conversion_rate(p));
}

// ----------------------------------------------------------- SetSampleEstimator

SetSampleEstimator::SetSampleEstimator(int cores, std::uint64_t seed) {
  PP_CHECK(cores >= 1);
  cells_.resize(static_cast<std::size_t>(cores) * kBuckets);
  for (Cell& c : cells_) rebuild(c);
  rng_.reserve(static_cast<std::size_t>(cores));
  std::uint64_t s = seed;
  for (int i = 0; i < cores; ++i) {
    const std::uint64_t a = splitmix64(s);
    const std::uint64_t b = splitmix64(s);
    rng_.emplace_back(a, b);
  }
}

void SetSampleEstimator::rebuild(Cell& c) {
  const std::uint64_t split = c.n[kL2Hit] + c.n[kL3Hit] + c.n[kMiss];
  c.t[0] = (c.n[kL2Hit] << 32U) / split;
  c.t[1] = ((c.n[kL2Hit] + c.n[kL3Hit]) << 32U) / split;
  c.t_xcore = c.n[kL3Hit] > 0 ? (c.xcore << 32U) / c.n[kL3Hit] : 0;
  c.t_wb = c.n[kMiss] > 0 ? (c.wb << 32U) / c.n[kMiss] : 0;
  c.since_rebuild = 0;
}

void SetSampleEstimator::observe(int core, std::uint32_t bucket, int level, bool xcore,
                                 bool widen_eligible) {
  Cell& c = cell(core, bucket);
  c.n[static_cast<std::size_t>(level)] += 1;
  if (xcore) c.xcore += 1;
  if (c.n[0] + c.n[1] + c.n[2] + c.n[3] >= kDecayAt) {
    for (std::uint64_t& v : c.n) v = (v + 1) / 2;
    c.xcore = (c.xcore + 1) / 2;
    c.wb = (c.wb + 1) / 2;
  }
  if (++c.since_rebuild >= c.rebuild_interval) {
    if (c.rebuild_interval < kRebuildEvery) c.rebuild_interval *= 2;
    rebuild(c);
  }
  if (max_shift_ != 0 && widen_eligible && level != kL1Hit) {
    BucketConf& b = conf_[bucket];
    b.n[static_cast<std::size_t>(level - 1)] += 1;
    if (b.n[0] + b.n[1] + b.n[2] >= kConfDecayAt) {
      for (std::uint64_t& v : b.n) v = (v + 1) / 2;
    }
    if (++b.since_eval >= kConfEvalEvery) {
      b.since_eval = 0;
      evaluate_confidence(b);
    }
  }
}

void SetSampleEstimator::enable_adaptive(std::uint32_t max_shift) { max_shift_ = max_shift; }

void SetSampleEstimator::evaluate_confidence(BucketConf& b) {
  const std::uint64_t n = b.n[0] + b.n[1] + b.n[2];
  if (n < kConfMinObs) return;
  // Current split in 16-bit fixed point, and drift vs the reference
  // recorded when the bucket last widened.
  std::uint16_t p16[3];
  for (int i = 0; i < 3; ++i) {
    p16[i] = static_cast<std::uint16_t>((b.n[static_cast<std::size_t>(i)] << 16U) / n);
  }
  if (!b.has_ref) {
    // First confident window: record the baseline the stability streak is
    // measured against.
    b.has_ref = true;
    b.streak = 0;
    for (int i = 0; i < 3; ++i) b.ref[i] = p16[i];
    return;
  }
  for (int i = 0; i < 3; ++i) {
    const std::uint32_t d = p16[i] > b.ref[i] ? std::uint32_t{p16[i]} - b.ref[i]
                                              : std::uint32_t{b.ref[i]} - p16[i];
    if (d > kDriftTol16) {
      // Phase change (a cold-start ramp, a competitor ramping): the split
      // the bucket converged on no longer holds. Deliberately HOLD the
      // current period rather than narrowing: re-tracking residue classes
      // whose sets went stale after widening would replay a
      // compulsory-miss refill storm that poisons both the latency account
      // and the calibration (measured as an oscillating 2-3x miss
      // inflation). The per-(core, bucket) cells keep re-calibrating
      // online from the still-tracked sample — the same mechanism that
      // tracks phase changes at the base period — and the refreshed
      // reference demands a full new stability streak before any further
      // widening.
      for (int j = 0; j < 3; ++j) b.ref[j] = p16[j];
      b.streak = 0;
      drift_events_ += 1;
      return;
    }
  }
  if (b.shift >= max_shift_) return;
  // Widen only when every level probability carries a tight CI:
  // 2 * sqrt(p(1-p)/n) < kCiTol  <=>  4 * ni * (n - ni) * kCiTolInvSq < n^3.
  const std::uint64_t n3 = n * n * n;
  for (const std::uint64_t ni : b.n) {
    if (4 * ni * (n - ni) * kCiTolInvSq >= n3) return;
  }
  // ... and only after the split has held stable AND confident for
  // kStableStreak consecutive evaluation windows. A monotone ramp whose
  // per-window steps stay under kDriftTol (a slowly warming structure)
  // accumulates drift events instead of a streak, so transients never
  // widen; only a genuinely converged phase does.
  if (++b.streak < kStableStreak) return;
  b.shift += 1;
  b.streak = 0;
  widen_events_ += 1;
  for (int i = 0; i < 3; ++i) b.ref[i] = p16[i];
}

void SetSampleEstimator::reset_counts() {
  for (Cell& c : cells_) {
    c = Cell{};
    rebuild(c);
  }
  for (BucketConf& b : conf_) b = BucketConf{};
}

void SetSampleEstimator::observe_writeback(int core, std::uint32_t bucket) {
  Cell& c = cell(core, bucket);
  if (c.wb < c.n[kMiss]) c.wb += 1;  // a writeback accompanies a miss
}

SetSampleEstimator::Sampled SetSampleEstimator::sample(int core, std::uint32_t bucket) {
  Cell& c = cell(core, bucket);
  Pcg32& rng = rng_[static_cast<std::size_t>(core)];
  const std::uint64_t u = rng.next();
  Sampled s;
  if (u < c.t[0]) {
    s.level = kL2Hit;
  } else if (u < c.t[1]) {
    s.level = kL3Hit;
    s.xcore = static_cast<std::uint64_t>(rng.next()) < c.t_xcore;
  } else {
    s.level = kMiss;
    s.writeback = static_cast<std::uint64_t>(rng.next()) < c.t_wb;
  }
  return s;
}


double SetSampleEstimator::level_probability(int core, std::uint32_t bucket, int level) const {
  const Cell& c = cells_[static_cast<std::size_t>(core) * kBuckets + bucket];
  const double total = static_cast<double>(c.n[0] + c.n[1] + c.n[2] + c.n[3]);
  return static_cast<double>(c.n[static_cast<std::size_t>(level)]) / total;
}

}  // namespace pp::model
