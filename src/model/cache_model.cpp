#include "model/cache_model.hpp"

#include "base/check.hpp"

namespace pp::model {

double performance_drop(double hits_per_sec, double delta_sec, double kappa) {
  PP_CHECK(hits_per_sec >= 0 && delta_sec >= 0);
  PP_CHECK(kappa >= 0 && kappa <= 1);
  const double x = delta_sec * kappa * hits_per_sec;
  if (x <= 0) return 0.0;
  return 1.0 / (1.0 + 1.0 / x);
}

double worst_case_drop(double hits_per_sec, double delta_sec) {
  return performance_drop(hits_per_sec, delta_sec, 1.0);
}

double hit_probability(const CacheModelParams& p) {
  PP_CHECK(p.cache_lines > 0 && p.target_chunks > 0);
  PP_CHECK(p.target_hits_per_sec >= 0 && p.competing_refs_per_sec >= 0);
  if (p.competing_refs_per_sec <= 0) return 1.0;
  const double pev = 1.0 / p.cache_lines;
  const double per_chunk_rate = p.target_hits_per_sec / p.target_chunks;
  const double pt = per_chunk_rate / (per_chunk_rate + p.competing_refs_per_sec);
  if (pt <= 0) return 0.0;
  return pt / (1.0 - (1.0 - pev) * (1.0 - pt));
}

double conversion_rate(const CacheModelParams& p) { return 1.0 - hit_probability(p); }

double model_drop(const CacheModelParams& p, double delta_sec) {
  return performance_drop(p.target_hits_per_sec, delta_sec, conversion_rate(p));
}

}  // namespace pp::model
