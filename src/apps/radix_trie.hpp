// Binary radix trie for longest-prefix-match IP lookup — the "RadixTrie
// lookup algorithm provided with the Click distribution" the paper uses
// (Section 2.1, IP workload; 128000 entries).
//
// The trie is a real data structure: inserts, deletes and lookups operate on
// host memory and return correct next hops (tests compare against a
// brute-force matcher). Each node also has a simulated address so that
// lookups performed through `lookup_sim` charge one dependent memory touch
// per visited node — the pointer-chasing behavior that makes IP lookup
// cache-sensitive (Figure 7, "radix_ip_lookup").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/address_space.hpp"
#include "sim/core.hpp"

namespace pp::apps {

class RadixTrie {
 public:
  static constexpr std::int32_t kNoPort = -1;

  RadixTrie();

  /// Bind nodes to simulated memory. Must be called before inserts when
  /// simulated lookups will be used; `max_nodes` bounds the arena.
  void attach(sim::AddressSpace& as, int domain, std::size_t max_nodes);

  /// Insert (or overwrite) a prefix route.
  void insert(std::uint32_t prefix, std::uint8_t len, std::uint16_t port);

  /// Remove a route; returns false if the exact prefix was absent.
  bool erase(std::uint32_t prefix, std::uint8_t len);

  /// Longest-prefix-match (host-only; no simulation cost).
  [[nodiscard]] std::int32_t lookup(std::uint32_t addr) const;

  /// Longest-prefix-match with per-node simulated touches charged to `core`.
  [[nodiscard]] std::int32_t lookup_sim(sim::Core& core, std::uint32_t addr) const;

  /// Batched lookups: the same per-address node touches and per-level
  /// instructions as `lookup_sim`, issued level-major across the batch so
  /// that shared top-of-trie lines collapse onto the L1 MRU fast path (the
  /// lanes are walked in address-sorted order, clustering identical nodes).
  /// Results land in `out[i]` for `addrs[i]`.
  void lookup_sim_batch(sim::Core& core, const std::uint32_t* addrs, std::int32_t* out,
                        int n) const;

  /// Touch all live node lines (warm start for measurements).
  void prewarm(sim::Core& core) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t route_count() const { return routes_; }
  [[nodiscard]] std::size_t sim_bytes() const { return nodes_.size() * kNodeBytes; }

 private:
  // Node footprint matches Click's radix nodes (pointers + route info);
  // two nodes per cache line, giving the multi-megabyte working set the
  // paper's 128k-entry table exhibits.
  static constexpr std::size_t kNodeBytes = 32;

  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::int32_t port = kNoPort;  // route terminating here, if any
  };

  [[nodiscard]] std::int32_t new_node();
  void prune(const std::vector<std::int32_t>& path);

  std::vector<Node> nodes_;
  std::size_t routes_ = 0;
  sim::Region region_;
  bool attached_ = false;
};

/// Reference matcher for tests: O(n) scan for the longest matching prefix.
class LinearLpm {
 public:
  void insert(std::uint32_t prefix, std::uint8_t len, std::uint16_t port);
  [[nodiscard]] std::int32_t lookup(std::uint32_t addr) const;

 private:
  struct Entry {
    std::uint32_t prefix;
    std::uint8_t len;
    std::uint16_t port;
  };
  std::vector<Entry> entries_;
};

}  // namespace pp::apps
