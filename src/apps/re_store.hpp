// The RE substrate: a circular packet store (a cache of recently observed
// content) and a fingerprint table mapping content fingerprints to store
// offsets — Section 2.1's RE description. The paper sizes the store to one
// second of traffic and the table to >4M entries; we default to 16 MB and
// 2M entries, which preserves the property that matters for contention
// (structures far larger than the shared cache, uniformly accessed), and
// both sizes are configurable up to and beyond the paper's.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "base/hash.hpp"
#include "sim/address_space.hpp"
#include "sim/core.hpp"

namespace pp::apps {

/// Append-only ring of bytes addressed by a monotonically increasing
/// absolute offset. Old content is overwritten; readers must check
/// residency.
class PacketStore {
 public:
  explicit PacketStore(std::size_t capacity_bytes);

  void attach(sim::AddressSpace& as, int domain);

  /// Append `data`, returning its absolute offset. If `core` is given, the
  /// copy is charged as streaming writes to the store region — immediately,
  /// or deferred into `burst` when one is supplied (batch execution).
  std::uint64_t append(std::span<const std::uint8_t> data, sim::Core* core = nullptr,
                       sim::StreamBurst* burst = nullptr);

  /// True if [offset, offset+len) is still resident (not overwritten).
  [[nodiscard]] bool contains(std::uint64_t offset, std::size_t len) const;

  /// Copy resident bytes out; false if the range is not resident. If `core`
  /// is given, the read is charged as streaming loads.
  [[nodiscard]] bool read(std::uint64_t offset, std::span<std::uint8_t> out,
                          sim::Core* core = nullptr) const;

  /// Byte-compare `expect` against resident content (encoder verification).
  [[nodiscard]] bool matches(std::uint64_t offset, std::span<const std::uint8_t> expect) const;

  /// Extend a verified match forward: longest n <= max_len with
  /// store[offset..offset+n) == data[0..n).
  [[nodiscard]] std::size_t extend_match(std::uint64_t offset,
                                         std::span<const std::uint8_t> data) const;

  [[nodiscard]] std::uint64_t end_offset() const { return end_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] sim::Addr sim_addr(std::uint64_t offset) const {
    return region_.base() + offset % ring_.size();
  }

 private:
  std::vector<std::uint8_t> ring_;
  std::uint64_t end_ = 0;  // absolute offset one past the newest byte
  sim::Region region_;
  bool attached_ = false;
};

/// Fixed-size direct-mapped fingerprint table (fp -> absolute store offset).
/// Collisions overwrite, as in RE practice: the table is a cache, not an
/// index; stale entries are filtered by store verification.
class FingerprintTable {
 public:
  explicit FingerprintTable(std::size_t slots);  // power of two

  void attach(sim::AddressSpace& as, int domain);

  void put(std::uint64_t fp, std::uint64_t offset, sim::Core* core = nullptr);
  [[nodiscard]] std::optional<std::uint64_t> get(std::uint64_t fp,
                                                 sim::Core* core = nullptr) const;

  [[nodiscard]] std::size_t slots() const { return fps_.size(); }
  [[nodiscard]] std::size_t sim_bytes() const { return fps_.size() * kSlotBytes; }

 private:
  static constexpr std::size_t kSlotBytes = 16;  // fp + offset

  [[nodiscard]] std::size_t slot_of(std::uint64_t fp) const {
    return static_cast<std::size_t>(mix64(fp)) & (fps_.size() - 1);
  }

  std::vector<std::uint64_t> fps_;
  std::vector<std::uint64_t> offsets_;
  std::vector<bool> used_;
  sim::Region region_;
  bool attached_ = false;
};

}  // namespace pp::apps
