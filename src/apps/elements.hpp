// Click elements wrapping the application engines — the paper's five
// realistic packet-processing types (Section 2.1) plus the SYN synthetic
// workload used for profiling:
//
//   RadixIPLookup   longest-prefix match over a radix trie (IP)
//   FlowStatistics  NetFlow per-flow accounting (MON adds this to IP)
//   SeqFirewall     1000-rule sequential filter (FW adds this to MON)
//   RedundancyElim  Spring-Wetherall RE (RE adds this to MON)
//   VpnEncrypt      AES-128-CTR over the payload (VPN adds this to MON*)
//   SynProcessor    per-packet synthetic work, with an optional hidden
//                   mode-switch (Section 4's "contained aggressiveness")
//   SynSource       packet-less synthetic driver (SYN / SYN_MAX competitors)
//
// *The paper's VPN = IP + NetFlow + AES.
#pragma once

#include <memory>

#include "apps/aes.hpp"
#include "apps/firewall.hpp"
#include "apps/flow_table.hpp"
#include "apps/radix_trie.hpp"
#include "apps/re_codec.hpp"
#include "apps/re_store.hpp"
#include "click/element.hpp"
#include "click/registry.hpp"

namespace pp::apps {

class RadixIPLookup final : public click::Element {
 public:
  [[nodiscard]] std::string_view class_name() const override { return "RadixIPLookup"; }
  [[nodiscard]] std::optional<std::string> configure(const std::vector<std::string>& args,
                                                     click::ElementEnv& env) override;
  [[nodiscard]] std::optional<std::string> initialize(click::ElementEnv& env) override;

  [[nodiscard]] const RadixTrie& trie() const { return trie_; }
  void prewarm(click::Context& cx) override;

 protected:
  void do_push(click::Context& cx, int port, net::PacketBuf* p) override;
  void do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) override;

 private:
  std::uint64_t n_prefixes_ = 128'000;
  std::uint64_t seed_ = 0;
  RadixTrie trie_;
};

class FlowStatistics final : public click::Element {
 public:
  [[nodiscard]] std::string_view class_name() const override { return "FlowStatistics"; }
  [[nodiscard]] std::optional<std::string> configure(const std::vector<std::string>& args,
                                                     click::ElementEnv& env) override;
  [[nodiscard]] std::optional<std::string> initialize(click::ElementEnv& env) override;

  [[nodiscard]] const FlowTable& table() const { return *table_; }
  void prewarm(click::Context& cx) override;
  [[nodiscard]] std::uint64_t table_full_events() const { return full_events_; }

 protected:
  void do_push(click::Context& cx, int port, net::PacketBuf* p) override;
  void do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) override;

 private:
  std::uint64_t buckets_ = 1ULL << 17;  // holds the paper's 100k flows
  std::unique_ptr<FlowTable> table_;
  std::uint64_t full_events_ = 0;
};

class SeqFirewall final : public click::Element {
 public:
  [[nodiscard]] std::string_view class_name() const override { return "SeqFirewall"; }
  [[nodiscard]] int n_outputs() const override { return 2; }  // 1 = matched (drop)
  [[nodiscard]] std::optional<std::string> configure(const std::vector<std::string>& args,
                                                     click::ElementEnv& env) override;
  [[nodiscard]] std::optional<std::string> initialize(click::ElementEnv& env) override;

  [[nodiscard]] std::uint64_t matched() const { return matched_; }
  void prewarm(click::Context& cx) override;

 protected:
  void do_push(click::Context& cx, int port, net::PacketBuf* p) override;
  void do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) override;

 private:
  std::uint64_t n_rules_ = 1000;
  std::uint64_t seed_ = 0;
  std::unique_ptr<RuleSet> rules_;
  std::uint64_t matched_ = 0;
};

class RedundancyElim final : public click::Element {
 public:
  [[nodiscard]] std::string_view class_name() const override { return "RedundancyElim"; }
  [[nodiscard]] std::optional<std::string> configure(const std::vector<std::string>& args,
                                                     click::ElementEnv& env) override;
  [[nodiscard]] std::optional<std::string> initialize(click::ElementEnv& env) override;

  [[nodiscard]] const ReStats& re_stats() const { return encoder_->stats(); }

 protected:
  void do_push(click::Context& cx, int port, net::PacketBuf* p) override;
  void do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) override;

 private:
  /// Shared packet-rewrite step of both push paths; streaming charges go to
  /// `burst` when batching.
  void encode_one(click::Context& cx, net::PacketBuf* p, sim::StreamBurst* burst);

  std::uint64_t store_mb_ = 16;
  std::uint64_t table_slots_ = 1ULL << 21;
  bool rewrite_ = true;
  std::unique_ptr<PacketStore> store_;
  std::unique_ptr<FingerprintTable> table_;
  std::unique_ptr<ReEncoder> encoder_;
  sim::StreamBurst burst_;  // payload-streaming staging (host side)
};

class VpnEncrypt final : public click::Element {
 public:
  [[nodiscard]] std::string_view class_name() const override { return "VpnEncrypt"; }
  [[nodiscard]] std::optional<std::string> configure(const std::vector<std::string>& args,
                                                     click::ElementEnv& env) override;
  [[nodiscard]] std::optional<std::string> initialize(click::ElementEnv& env) override;

 protected:
  void do_push(click::Context& cx, int port, net::PacketBuf* p) override;
  void do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) override;

 private:
  /// Shared crypto + cost model of both push paths. Per-packet
  /// (burst == nullptr): charges immediately, in do_push's historical
  /// order. Batched: defers the table loads / payload write-back into
  /// `burst` and accumulates the ALU charge into `deferred_instr`.
  void encrypt_one(click::Context& cx, net::PacketBuf* p, sim::StreamBurst* burst,
                   std::uint64_t* deferred_instr);

  std::uint64_t instr_per_byte_ = 14;  // software AES cost model
  std::unique_ptr<Aes128> aes_;
  std::array<std::uint8_t, 12> nonce_{};
  std::uint32_t counter_ = 0;
  sim::Region tables_;  // simulated residency of the AES tables (4 KB)
  std::size_t table_cursor_ = 0;
  sim::StreamBurst burst_;  // table-load + payload-write staging (host side)
};

/// Per-packet synthetic processing with an optional hidden mode switch: when
/// byte TRIG_OFF of a packet equals TRIG_VAL, the element flips to the ALT_*
/// parameters (the paper's crafted-packet attack in Section 4).
class SynProcessor final : public click::Element {
 public:
  [[nodiscard]] std::string_view class_name() const override { return "SynProcessor"; }
  [[nodiscard]] std::optional<std::string> configure(const std::vector<std::string>& args,
                                                     click::ElementEnv& env) override;
  [[nodiscard]] std::optional<std::string> initialize(click::ElementEnv& env) override;

  [[nodiscard]] bool triggered() const { return triggered_; }
  void reset_mode() { triggered_ = false; }

 protected:
  void do_push(click::Context& cx, int port, net::PacketBuf* p) override;
  void do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) override;

 private:
  std::uint64_t reads_ = 4;
  std::uint64_t instr_ = 100;
  std::uint64_t alt_reads_ = 0;
  std::uint64_t alt_instr_ = 0;
  std::int64_t trig_off_ = -1;
  std::uint64_t trig_val_ = 0;
  std::uint64_t trig_after_ = 0;  // >0: trigger after N packets (crafted-packet stand-in)
  std::uint64_t packets_seen_ = 0;
  std::uint64_t table_mb_ = 12;
  bool triggered_ = false;
  sim::Region table_;
  Pcg32 rng_{1};
  std::vector<sim::Addr> addr_scratch_;  // batched-probe staging (host side)
};

/// Packet-less synthetic driver: each batch performs COMPUTE instructions
/// and READS independent random loads over a TABLE_MB-sized region (the
/// paper's SYN; READS-only at the highest rate = SYN_MAX).
class SynSource final : public click::Element, public click::Driver {
 public:
  [[nodiscard]] std::string_view class_name() const override { return "SynSource"; }
  [[nodiscard]] int n_inputs() const override { return 0; }
  [[nodiscard]] int n_outputs() const override { return 0; }
  [[nodiscard]] std::optional<std::string> configure(const std::vector<std::string>& args,
                                                     click::ElementEnv& env) override;
  [[nodiscard]] std::optional<std::string> initialize(click::ElementEnv& env) override;

  void run_once(click::Context& cx) override;

  /// Runtime knob used by the sweep profiler to ramp refs/sec.
  void prewarm(click::Context& cx) override;

  void set_compute(std::uint64_t instr) { instr_ = instr; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }

 protected:
  void do_push(click::Context&, int, net::PacketBuf*) override {}

 private:
  std::uint64_t reads_ = 32;
  std::uint64_t instr_ = 0;
  std::uint64_t table_mb_ = 12;
  sim::Region table_;
  Pcg32 rng_{1};
  std::vector<sim::Addr> addr_scratch_;  // batched-probe staging (host side)
};

/// Register all application elements.
void register_app_elements(click::Registry& r);

}  // namespace pp::apps
