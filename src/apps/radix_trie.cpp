#include "apps/radix_trie.hpp"

#include <algorithm>
#include <array>

#include "base/check.hpp"

namespace pp::apps {

RadixTrie::RadixTrie() {
  nodes_.push_back(Node{});  // root
}

void RadixTrie::attach(sim::AddressSpace& as, int domain, std::size_t max_nodes) {
  PP_CHECK(!attached_);
  PP_CHECK(max_nodes >= nodes_.size());
  region_ = sim::Region::make(as, domain, kNodeBytes, max_nodes);
  attached_ = true;
}

std::int32_t RadixTrie::new_node() {
  PP_CHECK(!attached_ || nodes_.size() < region_.count());
  nodes_.push_back(Node{});
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

void RadixTrie::insert(std::uint32_t prefix, std::uint8_t len, std::uint16_t port) {
  PP_CHECK(len <= 32);
  std::int32_t cur = 0;
  for (std::uint8_t depth = 0; depth < len; ++depth) {
    const int bit = static_cast<int>((prefix >> (31 - depth)) & 1U);
    std::int32_t next = nodes_[static_cast<std::size_t>(cur)].child[bit];
    if (next < 0) {
      next = new_node();
      nodes_[static_cast<std::size_t>(cur)].child[bit] = next;
    }
    cur = next;
  }
  Node& n = nodes_[static_cast<std::size_t>(cur)];
  if (n.port == kNoPort) ++routes_;
  n.port = port;
}

bool RadixTrie::erase(std::uint32_t prefix, std::uint8_t len) {
  PP_CHECK(len <= 32);
  std::vector<std::int32_t> path;
  path.reserve(len + 1U);
  std::int32_t cur = 0;
  path.push_back(cur);
  for (std::uint8_t depth = 0; depth < len; ++depth) {
    const int bit = static_cast<int>((prefix >> (31 - depth)) & 1U);
    cur = nodes_[static_cast<std::size_t>(cur)].child[bit];
    if (cur < 0) return false;
    path.push_back(cur);
  }
  Node& n = nodes_[static_cast<std::size_t>(cur)];
  if (n.port == kNoPort) return false;
  n.port = kNoPort;
  --routes_;
  prune(path);
  return true;
}

void RadixTrie::prune(const std::vector<std::int32_t>& path) {
  // Unlink childless, route-less nodes bottom-up. Node storage is not
  // reclaimed (arena semantics, same as the simulated region), only
  // detached so lookups no longer walk dead branches.
  for (std::size_t i = path.size(); i-- > 1;) {
    const std::int32_t idx = path[i];
    Node& n = nodes_[static_cast<std::size_t>(idx)];
    if (n.port != kNoPort || n.child[0] >= 0 || n.child[1] >= 0) break;
    Node& parent = nodes_[static_cast<std::size_t>(path[i - 1])];
    if (parent.child[0] == idx) parent.child[0] = -1;
    if (parent.child[1] == idx) parent.child[1] = -1;
  }
}

std::int32_t RadixTrie::lookup(std::uint32_t addr) const {
  std::int32_t best = nodes_[0].port;
  std::int32_t cur = 0;
  for (int depth = 0; depth < 32; ++depth) {
    const int bit = static_cast<int>((addr >> (31 - depth)) & 1U);
    cur = nodes_[static_cast<std::size_t>(cur)].child[bit];
    if (cur < 0) break;
    if (nodes_[static_cast<std::size_t>(cur)].port != kNoPort) {
      best = nodes_[static_cast<std::size_t>(cur)].port;
    }
  }
  return best;
}

std::int32_t RadixTrie::lookup_sim(sim::Core& core, std::uint32_t addr) const {
  PP_CHECK(attached_);
  core.load(region_.at(0));
  std::int32_t best = nodes_[0].port;
  std::int32_t cur = 0;
  for (int depth = 0; depth < 32; ++depth) {
    const int bit = static_cast<int>((addr >> (31 - depth)) & 1U);
    core.compute(3);  // extract bit, compare, branch
    cur = nodes_[static_cast<std::size_t>(cur)].child[bit];
    if (cur < 0) break;
    core.load(region_.at(static_cast<std::size_t>(cur)));  // dependent walk
    if (nodes_[static_cast<std::size_t>(cur)].port != kNoPort) {
      best = nodes_[static_cast<std::size_t>(cur)].port;
    }
  }
  return best;
}

void RadixTrie::lookup_sim_batch(sim::Core& core, const std::uint32_t* addrs, std::int32_t* out,
                                 int n) const {
  PP_CHECK(attached_);
  constexpr int kMaxLanes = 64;
  PP_CHECK(n >= 0 && n <= kMaxLanes);
  // Lane order sorted by destination address: lanes that currently sit on
  // the same node are adjacent, so the level-major node loads below hit the
  // L1 MRU fast path instead of re-probing the hierarchy per lane.
  std::array<std::uint8_t, kMaxLanes> order;
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  std::sort(order.begin(), order.begin() + n,
            [&](std::uint8_t a, std::uint8_t b) { return addrs[a] < addrs[b]; });

  std::array<std::int32_t, kMaxLanes> cur;
  std::array<std::int32_t, kMaxLanes> best;
  for (int i = 0; i < n; ++i) {
    core.load(region_.at(0));
    cur[static_cast<std::size_t>(i)] = 0;
    best[static_cast<std::size_t>(i)] = nodes_[0].port;
  }
  // `order` doubles as the compact active-lane list: lanes whose walk ended
  // are squeezed out so each level only visits live lanes.
  int active = n;
  for (int depth = 0; depth < 32 && active > 0; ++depth) {
    int kept = 0;
    for (int i = 0; i < active; ++i) {
      const std::uint8_t lane8 = order[static_cast<std::size_t>(i)];
      const std::size_t lane = lane8;
      const int bit = static_cast<int>((addrs[lane] >> (31 - depth)) & 1U);
      core.compute(3);  // extract bit, compare, branch
      const std::int32_t c = nodes_[static_cast<std::size_t>(cur[lane])].child[bit];
      cur[lane] = c;
      if (c < 0) continue;
      core.load(region_.at(static_cast<std::size_t>(c)));  // dependent walk
      if (nodes_[static_cast<std::size_t>(c)].port != kNoPort) {
        best[lane] = nodes_[static_cast<std::size_t>(c)].port;
      }
      order[static_cast<std::size_t>(kept++)] = lane8;
    }
    active = kept;
  }
  for (int i = 0; i < n; ++i) out[i] = best[static_cast<std::size_t>(i)];
}

void RadixTrie::prewarm(sim::Core& core) const {
  if (!attached_ || nodes_.empty()) return;
  core.stream(region_.base(), nodes_.size() * kNodeBytes, sim::AccessType::kRead);
}

void LinearLpm::insert(std::uint32_t prefix, std::uint8_t len, std::uint16_t port) {
  entries_.push_back(Entry{prefix, len, port});
}

std::int32_t LinearLpm::lookup(std::uint32_t addr) const {
  std::int32_t best = -1;
  int best_len = -1;
  for (const Entry& e : entries_) {
    const std::uint32_t mask = e.len == 0 ? 0U : ~((1ULL << (32 - e.len)) - 1) & 0xffffffffU;
    if ((addr & mask) == (e.prefix & mask) && e.len > best_len) {
      best = e.port;
      best_len = e.len;
    }
  }
  return best;
}

}  // namespace pp::apps
