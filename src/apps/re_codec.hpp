// RE encoder/decoder: replaces payload regions already present in the
// packet store with (offset, length) references, and reconstructs the
// original on the far end from a mirrored store — the full
// Spring & Wetherall mechanism the paper's RE workload implements.
//
// Wire format of an encoded payload (all integers big-endian):
//   [0x4C][u16 len][len literal bytes]            literal run
//   [0x4D][u64 store_offset][u16 len]             match (content in store)
//
// Both sides append the ORIGINAL payload to their stores after
// encoding/decoding, so absolute store offsets stay synchronized
// (property-tested round-trip in tests/apps/re_codec_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/rabin.hpp"
#include "apps/re_store.hpp"
#include "sim/core.hpp"

namespace pp::apps {

struct ReStats {
  std::uint64_t payload_bytes = 0;
  std::uint64_t encoded_bytes = 0;
  std::uint64_t matched_bytes = 0;
  std::uint64_t matches = 0;
  std::uint64_t anchors = 0;
  std::uint64_t table_hits = 0;

  [[nodiscard]] double savings() const {
    return payload_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(encoded_bytes) / static_cast<double>(payload_bytes);
  }
};

class ReEncoder {
 public:
  /// Minimum verified match worth encoding (the 11-byte match header must be
  /// amortized).
  static constexpr std::size_t kMinMatch = Rabin::kWindow;

  ReEncoder(PacketStore& store, FingerprintTable& table) : store_(store), table_(table) {}

  /// Encode `payload`; appends the original payload to the store and
  /// registers its anchors. Simulated costs (fingerprinting, probes, store
  /// verification and insertion) are charged to `core` when non-null.
  ///
  /// `burst` (batch execution): the payload-streaming charges — match
  /// verification/extension reads and the store-append writes — are
  /// deferred into the burst instead of issued immediately; the dependent
  /// fingerprint-table probes stay per-packet. Host-side results are
  /// identical either way.
  [[nodiscard]] std::vector<std::uint8_t> encode(std::span<const std::uint8_t> payload,
                                                 sim::Core* core = nullptr,
                                                 sim::StreamBurst* burst = nullptr);

  [[nodiscard]] const ReStats& stats() const { return stats_; }

 private:
  PacketStore& store_;
  FingerprintTable& table_;
  ReStats stats_;
};

class ReDecoder {
 public:
  explicit ReDecoder(PacketStore& store) : store_(store) {}

  /// Decode an encoded payload; returns false on malformed input or a
  /// dangling store reference. On success the reconstructed payload has been
  /// appended to the decoder's store (keeping offsets in sync).
  [[nodiscard]] bool decode(std::span<const std::uint8_t> encoded,
                            std::vector<std::uint8_t>& out);

 private:
  PacketStore& store_;
};

}  // namespace pp::apps
