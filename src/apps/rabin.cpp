#include "apps/rabin.hpp"

namespace pp::apps {

namespace {
/// kMul^n mod 2^64, by square-and-multiply.
[[nodiscard]] constexpr std::uint64_t pow_mul(std::uint64_t base, std::uint64_t n) {
  std::uint64_t result = 1;
  while (n > 0) {
    if ((n & 1U) != 0) result *= base;
    base *= base;
    n >>= 1U;
  }
  return result;
}
}  // namespace

std::uint64_t Rabin::fingerprint(std::span<const std::uint8_t> data, std::size_t pos) {
  std::uint64_t fp = 0;
  for (std::size_t i = 0; i < kWindow; ++i) {
    fp = fp * kMul + data[pos + i] + 1;  // +1 so runs of zeros still mix
  }
  return fp;
}

std::vector<Rabin::Anchor> Rabin::sample(std::span<const std::uint8_t> data,
                                         std::uint64_t mask) {
  std::vector<Anchor> out;
  if (data.size() < kWindow) return out;
  constexpr std::uint64_t kMulW = pow_mul(kMul, kWindow);

  std::uint64_t fp = fingerprint(data, 0);
  if ((fp & mask) == 0) out.push_back(Anchor{0, fp});
  for (std::size_t pos = 1; pos + kWindow <= data.size(); ++pos) {
    // Roll: drop data[pos-1], append data[pos+kWindow-1].
    fp = fp * kMul + data[pos + kWindow - 1] + 1 -
         kMulW * (static_cast<std::uint64_t>(data[pos - 1]) + 1);
    if ((fp & mask) == 0) {
      out.push_back(Anchor{static_cast<std::uint32_t>(pos), fp});
    }
  }
  return out;
}

}  // namespace pp::apps
