#include "apps/flow_table.hpp"

#include "base/check.hpp"

namespace pp::apps {

FlowTable::FlowTable(std::size_t buckets) {
  PP_CHECK(buckets >= 16 && (buckets & (buckets - 1)) == 0);
  slots_.assign(buckets, Slot{});
  max_used_ = buckets - buckets / 8;  // cap load factor at 87.5%
}

void FlowTable::attach(sim::AddressSpace& as, int domain) {
  PP_CHECK(!attached_);
  region_ = sim::Region::make(as, domain, kEntryBytes, slots_.size());
  attached_ = true;
}

std::uint64_t FlowTable::hash_tuple(const net::FiveTuple& t) {
  const std::uint64_t a = (static_cast<std::uint64_t>(t.src) << 32) | t.dst;
  const std::uint64_t b = (static_cast<std::uint64_t>(t.sport) << 32) |
                          (static_cast<std::uint64_t>(t.dport) << 16) | t.proto;
  return hash_combine(a, b);
}

std::int64_t FlowTable::probe(const net::FiveTuple& t, sim::Core* core) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = static_cast<std::size_t>(hash_tuple(t)) & mask;
  if (core != nullptr) core->compute(24);  // hash of the 5-tuple
  for (std::size_t step = 0; step < slots_.size(); ++step) {
    if (core != nullptr) core->load(region_.at(idx));  // dependent probe
    const Slot& s = slots_[idx];
    if (!s.used || s.rec.key == t) return static_cast<std::int64_t>(idx);
    idx = (idx + 1) & mask;
  }
  return -1;
}

std::int64_t FlowTable::probe_collect(const net::FiveTuple& t,
                                      std::vector<sim::Addr>& addrs) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = static_cast<std::size_t>(hash_tuple(t)) & mask;
  for (std::size_t step = 0; step < slots_.size(); ++step) {
    addrs.push_back(region_.at(idx));
    const Slot& s = slots_[idx];
    if (!s.used || s.rec.key == t) return static_cast<std::int64_t>(idx);
    idx = (idx + 1) & mask;
  }
  return -1;
}

bool FlowTable::update_at(std::int64_t idx, const net::FiveTuple& t, std::uint32_t bytes,
                          std::uint64_t now_ns) {
  if (idx < 0) return false;
  Slot& s = slots_[static_cast<std::size_t>(idx)];
  if (!s.used) {
    if (used_ >= max_used_) return false;
    s.used = true;
    s.rec = FlowRecord{t, 0, 0, now_ns, now_ns};
    ++used_;
  }
  s.rec.packets += 1;
  s.rec.bytes += bytes;
  s.rec.last_ns = now_ns;
  return true;
}

bool FlowTable::update(const net::FiveTuple& t, std::uint32_t bytes, std::uint64_t now_ns) {
  return update_at(probe(t, nullptr), t, bytes, now_ns);
}

bool FlowTable::update_sim(sim::Core& core, const net::FiveTuple& t, std::uint32_t bytes,
                           std::uint64_t now_ns) {
  PP_CHECK(attached_);
  const std::int64_t idx = probe(t, &core);
  const bool ok = update_at(idx, t, bytes, now_ns);
  if (idx >= 0) {
    core.store(region_.at(static_cast<std::size_t>(idx)));  // count/timestamp update
    core.compute(10);
  }
  return ok;
}

std::size_t FlowTable::update_sim_batch(sim::Core& core, const net::FiveTuple* ts,
                                        const std::uint32_t* bytes, std::uint64_t now_ns,
                                        std::size_t n) {
  PP_CHECK(attached_);
  probe_scratch_.clear();
  store_scratch_.clear();
  std::uint64_t update_instr = 0;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t idx = probe_collect(ts[i], probe_scratch_);
    if (!update_at(idx, ts[i], bytes[i], now_ns)) ++failed;
    if (idx >= 0) {
      store_scratch_.push_back(region_.at(static_cast<std::size_t>(idx)));
      update_instr += 10;
    }
  }
  core.compute(24 * n);  // 5-tuple hashes
  core.access_many(probe_scratch_.data(), probe_scratch_.size(), sim::AccessType::kRead,
                   /*dependent=*/true);
  core.access_many(store_scratch_.data(), store_scratch_.size(), sim::AccessType::kWrite,
                   /*dependent=*/true);
  core.compute(update_instr);  // count/timestamp updates
  return failed;
}

void FlowTable::prewarm(sim::Core& core) const {
  if (attached_) sim::warm_region(core, region_);
}

std::optional<FlowRecord> FlowTable::find(const net::FiveTuple& t) const {
  const std::int64_t idx = probe(t, nullptr);
  if (idx < 0) return std::nullopt;
  const Slot& s = slots_[static_cast<std::size_t>(idx)];
  if (!s.used) return std::nullopt;
  return s.rec;
}

std::size_t FlowTable::expire(std::uint64_t idle_cutoff_ns, std::uint64_t active_cutoff_ns,
                              const std::function<void(const FlowRecord&)>& sink) {
  // Deleting from a linear-probing table shifts clusters; the simplest
  // correct approach (expiry runs out of band, not per packet) is to export
  // matching records and rebuild the table from the survivors.
  std::vector<FlowRecord> survivors;
  survivors.reserve(used_);
  std::size_t exported = 0;
  for (Slot& s : slots_) {
    if (!s.used) continue;
    if (s.rec.last_ns <= idle_cutoff_ns || s.rec.first_ns <= active_cutoff_ns) {
      sink(s.rec);
      ++exported;
    } else {
      survivors.push_back(s.rec);
    }
    s.used = false;
  }
  used_ = 0;
  for (const FlowRecord& r : survivors) {
    const std::int64_t idx = probe(r.key, nullptr);
    PP_CHECK(idx >= 0);
    Slot& dst = slots_[static_cast<std::size_t>(idx)];
    PP_CHECK(!dst.used);
    dst.used = true;
    dst.rec = r;
    ++used_;
  }
  return exported;
}

}  // namespace pp::apps
