#include "apps/elements.hpp"

#include <algorithm>

#include "click/args.hpp"
#include "net/byteorder.hpp"
#include "net/checksum.hpp"
#include "net/generators.hpp"
#include "net/headers.hpp"

namespace pp::apps {

namespace {

/// Extract match fields from a generated packet (Ethernet+IPv4+L4).
[[nodiscard]] PacketFields fields_of(const net::PacketBuf& p) {
  PacketFields f;
  const auto l3 = p.l3();
  f.src = net::load_be32(&l3[12]);
  f.dst = net::load_be32(&l3[16]);
  f.proto = l3[9];
  if ((f.proto == net::kProtoTcp || f.proto == net::kProtoUdp) && l3.size() >= 24) {
    const auto ports = net::decode_ports(l3.subspan(20));
    f.sport = ports.src;
    f.dport = ports.dst;
  }
  return f;
}

[[nodiscard]] net::FiveTuple tuple_of(const net::PacketBuf& p) {
  const PacketFields f = fields_of(p);
  return net::FiveTuple{f.src, f.dst, f.sport, f.dport, f.proto};
}

/// Payload span after the UDP/TCP header (zero-length if none).
[[nodiscard]] std::span<std::uint8_t> payload_of(net::PacketBuf& p) {
  auto l3 = p.l3();
  if (l3.size() < 20) return {};
  const std::uint8_t proto = l3[9];
  const std::size_t l4_hdr =
      proto == net::kProtoTcp ? net::kTcpMinHeaderBytes : net::kUdpHeaderBytes;
  if (l3.size() < 20 + l4_hdr) return {};
  return l3.subspan(20 + l4_hdr);
}

[[nodiscard]] std::uint64_t sim_ns(const sim::Core& core) {
  return static_cast<std::uint64_t>(static_cast<double>(core.now()) /
                                    core.config().ghz);
}

}  // namespace

// ---------------------------------------------------------------- RadixIPLookup

std::optional<std::string> RadixIPLookup::configure(const std::vector<std::string>& args,
                                                    click::ElementEnv& env) {
  click::Args a(args);
  n_prefixes_ = a.get_u64("PREFIXES", n_prefixes_);
  seed_ = a.get_u64("SEED", env.seed);
  if (n_prefixes_ < 1 || n_prefixes_ > 2'000'000) a.error("PREFIXES out of range");
  return a.finish();
}

std::optional<std::string> RadixIPLookup::initialize(click::ElementEnv& env) {
  Pcg32 rng{seed_};
  const auto table = net::generate_prefix_table(static_cast<std::size_t>(n_prefixes_), rng,
                                                static_cast<std::uint16_t>(6));
  for (const auto& e : table) trie_.insert(e.prefix, e.len, e.next_hop);
  trie_.attach(env.machine->address_space(), env.numa_domain, trie_.node_count() + 1024);
  return std::nullopt;
}

void RadixIPLookup::prewarm(click::Context& cx) { trie_.prewarm(cx.core); }

namespace {
/// Destination address of a packet, or 0.0.0.0 for frames too short to
/// carry one (l3() clamps truncated frames to an empty span; a lookup on
/// 0.0.0.0 resolves to the default route like any unroutable packet).
[[nodiscard]] std::uint32_t dst_of(const net::PacketBuf& p) {
  const auto l3 = p.l3();
  if (l3.size() < 20) return 0;
  return net::load_be32(&l3[16]);
}
}  // namespace

void RadixIPLookup::do_push(click::Context& cx, int port, net::PacketBuf* p) {
  (void)port;
  const std::uint32_t dst = dst_of(*p);
  cx.core.compute(12);
  const std::int32_t out_port = trie_.lookup_sim(cx.core, dst);
  p->output_port = out_port < 0 ? std::uint16_t{0} : static_cast<std::uint16_t>(out_port);
  output(cx, 0, p);
}

void RadixIPLookup::do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) {
  (void)port;
  // lookup_sim_batch's lane arrays cap at 64; keep that in sync with the
  // largest burst an element can receive.
  static_assert(click::kMaxBatch <= 64);
  std::uint32_t dsts[click::kMaxBatch] = {};
  std::int32_t ports[click::kMaxBatch] = {};
  for (int i = 0; i < n; ++i) {
    dsts[i] = dst_of(*ps[i]);
    cx.core.compute(12);
  }
  trie_.lookup_sim_batch(cx.core, dsts, ports, n);
  for (int i = 0; i < n; ++i) {
    ps[i]->output_port = ports[i] < 0 ? std::uint16_t{0} : static_cast<std::uint16_t>(ports[i]);
  }
  output_batch(cx, 0, ps, n);
}

// --------------------------------------------------------------- FlowStatistics

std::optional<std::string> FlowStatistics::configure(const std::vector<std::string>& args,
                                                     click::ElementEnv& env) {
  (void)env;
  click::Args a(args);
  buckets_ = a.get_u64("BUCKETS", buckets_);
  if (buckets_ < 16 || (buckets_ & (buckets_ - 1)) != 0) {
    a.error("BUCKETS must be a power of two >= 16");
  }
  return a.finish();
}

std::optional<std::string> FlowStatistics::initialize(click::ElementEnv& env) {
  table_ = std::make_unique<FlowTable>(static_cast<std::size_t>(buckets_));
  table_->attach(env.machine->address_space(), env.numa_domain);
  return std::nullopt;
}

void FlowStatistics::prewarm(click::Context& cx) { table_->prewarm(cx.core); }

void FlowStatistics::do_push(click::Context& cx, int port, net::PacketBuf* p) {
  (void)port;
  const net::FiveTuple t = tuple_of(*p);
  if (!table_->update_sim(cx.core, t, p->len, sim_ns(cx.core))) ++full_events_;
  output(cx, 0, p);
}

void FlowStatistics::do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) {
  (void)port;
  // Hash-probe burst (see FlowTable::update_sim_batch); the burst stays
  // intact for the downstream chain instead of degrading to per-packet
  // pushes.
  net::FiveTuple tuples[click::kMaxBatch];
  std::uint32_t lens[click::kMaxBatch];
  for (int i = 0; i < n; ++i) {
    tuples[i] = tuple_of(*ps[i]);
    lens[i] = ps[i]->len;
  }
  full_events_ += table_->update_sim_batch(cx.core, tuples, lens, sim_ns(cx.core),
                                           static_cast<std::size_t>(n));
  output_batch(cx, 0, ps, n);
}

// ------------------------------------------------------------------ SeqFirewall

std::optional<std::string> SeqFirewall::configure(const std::vector<std::string>& args,
                                                  click::ElementEnv& env) {
  click::Args a(args);
  n_rules_ = a.get_u64("RULES", n_rules_);
  seed_ = a.get_u64("SEED", env.seed);
  if (n_rules_ < 1 || n_rules_ > 1'000'000) a.error("RULES out of range");
  return a.finish();
}

std::optional<std::string> SeqFirewall::initialize(click::ElementEnv& env) {
  Pcg32 rng{seed_};
  rules_ = std::make_unique<RuleSet>(net::generate_rules(static_cast<std::size_t>(n_rules_), rng));
  rules_->attach(env.machine->address_space(), env.numa_domain);
  return std::nullopt;
}

void SeqFirewall::prewarm(click::Context& cx) { rules_->prewarm(cx.core); }

void SeqFirewall::do_push(click::Context& cx, int port, net::PacketBuf* p) {
  (void)port;
  const PacketFields f = fields_of(*p);
  const std::int32_t idx = rules_->match_sim(cx.core, f);
  if (idx >= 0) {
    ++matched_;
    cx.core.count_drop();
    if (output_connected(1)) {
      output(cx, 1, p);
    } else {
      net::recycle(cx.core, p);
    }
    return;
  }
  output(cx, 0, p);
}

void SeqFirewall::do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) {
  (void)port;
  // Rule-scan burst: one access_many covers every packet's scanned lines,
  // then the burst is partitioned into passed and matched packets (order
  // preserved) so downstream elements and the recycler stay batched.
  PacketFields fields[click::kMaxBatch];
  std::int32_t match_idx[click::kMaxBatch];
  for (int i = 0; i < n; ++i) fields[i] = fields_of(*ps[i]);
  rules_->match_sim_batch(cx.core, fields, match_idx, static_cast<std::size_t>(n));

  net::PacketBuf* passed[click::kMaxBatch];
  net::PacketBuf* dropped[click::kMaxBatch];
  int np = 0;
  int nd = 0;
  for (int i = 0; i < n; ++i) {
    if (match_idx[i] >= 0) {
      dropped[nd++] = ps[i];
    } else {
      passed[np++] = ps[i];
    }
  }
  if (nd > 0) {
    matched_ += static_cast<std::uint64_t>(nd);
    cx.core.count_drops(static_cast<std::uint64_t>(nd));
    if (output_connected(1)) {
      output_batch(cx, 1, dropped, nd);
    } else {
      net::recycle_batch(cx.core, dropped, static_cast<std::size_t>(nd));
    }
  }
  if (np > 0) output_batch(cx, 0, passed, np);
}

// --------------------------------------------------------------- RedundancyElim

std::optional<std::string> RedundancyElim::configure(const std::vector<std::string>& args,
                                                     click::ElementEnv& env) {
  (void)env;
  click::Args a(args);
  store_mb_ = a.get_u64("STORE_MB", store_mb_);
  table_slots_ = a.get_u64("TABLE_SLOTS", table_slots_);
  rewrite_ = a.get_bool("REWRITE", rewrite_);
  if (store_mb_ < 1 || store_mb_ > 2048) a.error("STORE_MB out of range [1, 2048]");
  if (table_slots_ < 16 || (table_slots_ & (table_slots_ - 1)) != 0) {
    a.error("TABLE_SLOTS must be a power of two >= 16");
  }
  return a.finish();
}

std::optional<std::string> RedundancyElim::initialize(click::ElementEnv& env) {
  store_ = std::make_unique<PacketStore>(static_cast<std::size_t>(store_mb_) << 20);
  table_ = std::make_unique<FingerprintTable>(static_cast<std::size_t>(table_slots_));
  store_->attach(env.machine->address_space(), env.numa_domain);
  table_->attach(env.machine->address_space(), env.numa_domain);
  encoder_ = std::make_unique<ReEncoder>(*store_, *table_);
  return std::nullopt;
}

void RedundancyElim::encode_one(click::Context& cx, net::PacketBuf* p,
                                sim::StreamBurst* burst) {
  auto payload = payload_of(*p);
  if (payload.size() < Rabin::kWindow) return;
  const std::vector<std::uint8_t> encoded = encoder_->encode(payload, &cx.core, burst);
  if (rewrite_ && encoded.size() < payload.size()) {
    // Shrink the packet on the wire: rewrite payload, patch lengths and the
    // IP checksum (the far end reverses this with its mirrored store).
    std::copy(encoded.begin(), encoded.end(), payload.begin());
    const std::uint32_t delta = static_cast<std::uint32_t>(payload.size() - encoded.size());
    p->len -= delta;
    auto l3 = p->l3();
    net::Ipv4Fields ip = net::decode_ipv4(l3);
    ip.total_length = static_cast<std::uint16_t>(ip.total_length - delta);
    net::encode_ipv4(ip, l3);
    if (ip.protocol == net::kProtoUdp) {
      net::store_be16(&l3[24], static_cast<std::uint16_t>(net::load_be16(&l3[24]) - delta));
    }
    cx.core.compute(60);
    if (burst != nullptr) {
      burst->add_line(p->sim_addr(p->l3_offset), sim::AccessType::kWrite);
    } else {
      cx.core.store(p->sim_addr(p->l3_offset));
    }
  }
}

void RedundancyElim::do_push(click::Context& cx, int port, net::PacketBuf* p) {
  (void)port;
  if (cx.core.memory().payload_model_active()) {
    // SimFidelity::kStreamed: stage the per-packet streaming charges into
    // the same burst the batch path uses, so the stream model serves the
    // payload traffic at any batch size.
    burst_.clear();
    encode_one(cx, p, &burst_);
    burst_.flush(cx.core);
  } else {
    encode_one(cx, p, nullptr);
  }
  output(cx, 0, p);
}

void RedundancyElim::do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) {
  (void)port;
  // Payload-streaming burst: the per-packet host-side encoding (store and
  // fingerprint-table mutation order included) is unchanged, and the
  // dependent table probes still charge per packet; only the big streaming
  // charges — match verification/extension reads and store-append writes —
  // are accumulated and issued as one read burst + one write burst.
  burst_.clear();
  for (int i = 0; i < n; ++i) encode_one(cx, ps[i], &burst_);
  burst_.flush(cx.core);
  output_batch(cx, 0, ps, n);
}

// ------------------------------------------------------------------- VpnEncrypt

std::optional<std::string> VpnEncrypt::configure(const std::vector<std::string>& args,
                                                 click::ElementEnv& env) {
  (void)env;
  click::Args a(args);
  instr_per_byte_ = a.get_u64("INSTR_PER_BYTE", instr_per_byte_);
  if (instr_per_byte_ < 1 || instr_per_byte_ > 1000) a.error("INSTR_PER_BYTE out of range");
  return a.finish();
}

std::optional<std::string> VpnEncrypt::initialize(click::ElementEnv& env) {
  std::array<std::uint8_t, Aes128::kKeyBytes> key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(env.rng.next() & 0xffU);
  for (auto& b : nonce_) b = static_cast<std::uint8_t>(env.rng.next() & 0xffU);
  aes_ = std::make_unique<Aes128>(std::span<const std::uint8_t, Aes128::kKeyBytes>{key});
  // 4 KB of lookup tables (Te-table footprint), resident in the cache sim.
  tables_ = sim::Region::make(env.machine->address_space(), env.numa_domain, sim::kLineBytes,
                              4096 / sim::kLineBytes);
  return std::nullopt;
}

void VpnEncrypt::encrypt_one(click::Context& cx, net::PacketBuf* p, sim::StreamBurst* burst,
                             std::uint64_t* deferred_instr) {
  auto payload = payload_of(*p);
  if (payload.empty()) return;
  aes_->ctr_xcrypt(payload, payload, std::span<const std::uint8_t, 12>{nonce_}, counter_);
  const std::size_t blocks = (payload.size() + Aes128::kBlockBytes - 1) / Aes128::kBlockBytes;
  counter_ += static_cast<std::uint32_t>(blocks);
  // Cost model: software AES ALU work plus table residency + payload I/O.
  const std::uint64_t instr = instr_per_byte_ * payload.size();
  if (burst != nullptr) {
    *deferred_instr += instr;
    for (std::size_t b = 0; b < blocks; ++b) {
      burst->add_line(tables_.at(table_cursor_), sim::AccessType::kRead);
      table_cursor_ = (table_cursor_ + 1) % tables_.count();
    }
    burst->add(p->sim_addr(static_cast<std::size_t>(payload.data() - p->bytes.data())),
               payload.size(), sim::AccessType::kWrite);
  } else {
    cx.core.compute(instr);
    for (std::size_t b = 0; b < blocks; ++b) {
      cx.core.load(tables_.at(table_cursor_), /*dependent=*/false);
      table_cursor_ = (table_cursor_ + 1) % tables_.count();
    }
    cx.core.stream(p->sim_addr(static_cast<std::size_t>(payload.data() - p->bytes.data())),
                   payload.size(), sim::AccessType::kWrite);
  }
}

void VpnEncrypt::do_push(click::Context& cx, int port, net::PacketBuf* p) {
  (void)port;
  if (cx.core.memory().payload_model_active()) {
    // SimFidelity::kStreamed: see RedundancyElim::do_push.
    burst_.clear();
    std::uint64_t instr = 0;
    encrypt_one(cx, p, &burst_, &instr);
    if (instr > 0) cx.core.compute(instr);
    burst_.flush(cx.core);
  } else {
    encrypt_one(cx, p, nullptr, nullptr);
  }
  output(cx, 0, p);
}

void VpnEncrypt::do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) {
  (void)port;
  // Payload-streaming burst: the host-side crypto (and the CTR counter /
  // table-cursor sequences) is identical to the per-packet path; the ALU
  // charge is summed, and the AES-table loads plus the payload write-backs
  // of the whole burst are issued as one read burst + one write burst.
  burst_.clear();
  std::uint64_t instr = 0;
  for (int i = 0; i < n; ++i) encrypt_one(cx, ps[i], &burst_, &instr);
  if (instr > 0) cx.core.compute(instr);
  burst_.flush(cx.core);
  output_batch(cx, 0, ps, n);
}

// ----------------------------------------------------------------- SynProcessor

std::optional<std::string> SynProcessor::configure(const std::vector<std::string>& args,
                                                   click::ElementEnv& env) {
  (void)env;
  click::Args a(args);
  reads_ = a.get_u64("READS", reads_);
  instr_ = a.get_u64("INSTR", instr_);
  alt_reads_ = a.get_u64("ALT_READS", alt_reads_);
  alt_instr_ = a.get_u64("ALT_INSTR", alt_instr_);
  trig_off_ = static_cast<std::int64_t>(a.get_u64("TRIG_OFF", 0));
  if (!a.has("TRIG_OFF")) trig_off_ = -1;
  trig_val_ = a.get_u64("TRIG_VAL", 0xEE);
  trig_after_ = a.get_u64("TRIG_AFTER", 0);
  table_mb_ = a.get_u64("TABLE_MB", table_mb_);
  if (table_mb_ < 1 || table_mb_ > 256) a.error("TABLE_MB out of range [1, 256]");
  return a.finish();
}

std::optional<std::string> SynProcessor::initialize(click::ElementEnv& env) {
  table_ = sim::Region::make(env.machine->address_space(), env.numa_domain, sim::kLineBytes,
                             (table_mb_ << 20) / sim::kLineBytes);
  rng_ = Pcg32{env.seed};
  return std::nullopt;
}

void SynProcessor::do_push(click::Context& cx, int port, net::PacketBuf* p) {
  (void)port;
  ++packets_seen_;
  if (!triggered_ && trig_off_ >= 0 && static_cast<std::size_t>(trig_off_) < p->len &&
      p->bytes[static_cast<std::size_t>(trig_off_)] == trig_val_) {
    triggered_ = true;  // hidden aggressiveness unlocked by a crafted packet
  }
  if (!triggered_ && trig_after_ > 0 && packets_seen_ >= trig_after_) {
    triggered_ = true;  // deterministic stand-in: the crafted packet is the Nth
  }
  const std::uint64_t reads = triggered_ ? alt_reads_ : reads_;
  const std::uint64_t instr = triggered_ ? alt_instr_ : instr_;
  if (instr > 0) cx.core.compute(instr);
  // Independent probes issued as one burst (identical access sequence;
  // counter bookkeeping hoisted out of the loop).
  addr_scratch_.resize(reads);
  for (std::uint64_t i = 0; i < reads; ++i) {
    addr_scratch_[i] = table_.at(rng_.bounded(static_cast<std::uint32_t>(table_.count())));
  }
  // stream_burst == access_many(..., dependent=false) outside the streamed
  // tier; under SIM_FIDELITY=streamed these independent uniform probes are
  // served by the per-burst stream model (no per-line recency to lose).
  cx.core.stream_burst(addr_scratch_.data(), reads, sim::AccessType::kRead);
  output(cx, 0, p);
}

void SynProcessor::do_push_batch(click::Context& cx, int port, net::PacketBuf** ps, int n) {
  (void)port;
  // Same per-packet trigger evaluation, instruction charge, and probe
  // addresses (same RNG sequence) as the per-packet path; the burst's
  // independent probes are then issued as one access_many call so the
  // counter bookkeeping is applied once per burst.
  addr_scratch_.clear();
  for (int i = 0; i < n; ++i) {
    net::PacketBuf* p = ps[i];
    ++packets_seen_;
    if (!triggered_ && trig_off_ >= 0 && static_cast<std::size_t>(trig_off_) < p->len &&
        p->bytes[static_cast<std::size_t>(trig_off_)] == trig_val_) {
      triggered_ = true;
    }
    if (!triggered_ && trig_after_ > 0 && packets_seen_ >= trig_after_) {
      triggered_ = true;
    }
    const std::uint64_t reads = triggered_ ? alt_reads_ : reads_;
    const std::uint64_t instr = triggered_ ? alt_instr_ : instr_;
    if (instr > 0) cx.core.compute(instr);
    for (std::uint64_t r = 0; r < reads; ++r) {
      addr_scratch_.push_back(
          table_.at(rng_.bounded(static_cast<std::uint32_t>(table_.count()))));
    }
  }
  cx.core.stream_burst(addr_scratch_.data(), addr_scratch_.size(), sim::AccessType::kRead);
  output_batch(cx, 0, ps, n);
}

// -------------------------------------------------------------------- SynSource

std::optional<std::string> SynSource::configure(const std::vector<std::string>& args,
                                                click::ElementEnv& env) {
  (void)env;
  click::Args a(args);
  reads_ = a.get_u64("READS", reads_);
  instr_ = a.get_u64("INSTR", instr_);
  table_mb_ = a.get_u64("TABLE_MB", table_mb_);
  if (reads_ < 1 || reads_ > 4096) a.error("READS out of range [1, 4096]");
  if (table_mb_ < 1 || table_mb_ > 256) a.error("TABLE_MB out of range [1, 256]");
  return a.finish();
}

std::optional<std::string> SynSource::initialize(click::ElementEnv& env) {
  table_ = sim::Region::make(env.machine->address_space(), env.numa_domain, sim::kLineBytes,
                             (table_mb_ << 20) / sim::kLineBytes);
  rng_ = Pcg32{env.seed};
  return std::nullopt;
}

void SynSource::prewarm(click::Context& cx) { sim::warm_region(cx.core, table_); }

void SynSource::run_once(click::Context& cx) {
  if (instr_ > 0) cx.core.compute(instr_);
  addr_scratch_.resize(reads_);
  for (std::uint64_t i = 0; i < reads_; ++i) {
    addr_scratch_[i] = table_.at(rng_.bounded(static_cast<std::uint32_t>(table_.count())));
  }
  // See SynProcessor::do_push for why this is stream_burst.
  cx.core.stream_burst(addr_scratch_.data(), reads_, sim::AccessType::kRead);
  cx.core.count_packet();  // one work unit ("batch") for throughput accounting
}

// ----------------------------------------------------------------- registration

void register_app_elements(click::Registry& r) {
  r.register_class("RadixIPLookup", [] { return std::make_unique<RadixIPLookup>(); });
  r.register_class("FlowStatistics", [] { return std::make_unique<FlowStatistics>(); });
  r.register_class("SeqFirewall", [] { return std::make_unique<SeqFirewall>(); });
  r.register_class("RedundancyElim", [] { return std::make_unique<RedundancyElim>(); });
  r.register_class("VpnEncrypt", [] { return std::make_unique<VpnEncrypt>(); });
  r.register_class("SynProcessor", [] { return std::make_unique<SynProcessor>(); });
  r.register_class("SynSource", [] { return std::make_unique<SynSource>(); });
}

}  // namespace pp::apps
