// Sequential-scan firewall (the paper's FW workload, Section 2.1): each
// packet is checked against 1000 5-tuple rules in order; a match drops the
// packet. The paper deliberately uses sequential search because the rule set
// fits in L2 — FW is the workload that benefits from all levels of the
// private hierarchy and barely touches the shared cache.
#pragma once

#include <cstdint>
#include <vector>

#include "net/generators.hpp"
#include "sim/address_space.hpp"
#include "sim/core.hpp"

namespace pp::apps {

struct PacketFields {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint8_t proto = 0;
};

/// True if `rule` matches `pkt` (real matching; property-tested against the
/// rule semantics).
[[nodiscard]] bool rule_matches(const net::FirewallRule& rule, const PacketFields& pkt);

class RuleSet {
 public:
  explicit RuleSet(std::vector<net::FirewallRule> rules);

  void attach(sim::AddressSpace& as, int domain);

  /// Index of the first matching rule, or -1 (host-side).
  [[nodiscard]] std::int32_t match(const PacketFields& pkt) const;

  /// Same, charging the sequential scan to `core`: rules are packed two per
  /// line and scanned in order (independent, prefetch-friendly accesses).
  [[nodiscard]] std::int32_t match_sim(sim::Core& core, const PacketFields& pkt) const;

  /// Match a burst of `n` packets (rule-scan burst). Matching runs
  /// host-side per packet; every packet's scanned line touches are issued
  /// as one independent access_many (same addresses and counts as `n`
  /// match_sim calls) and the per-rule instruction charge once per burst.
  void match_sim_batch(sim::Core& core, const PacketFields* pkts, std::int32_t* out,
                       std::size_t n) const;

  /// Touch all rule lines (warm start for measurements).
  void prewarm(sim::Core& core) const;

  [[nodiscard]] std::size_t size() const { return rules_.size(); }
  [[nodiscard]] std::size_t sim_bytes() const { return rules_.size() * kRuleBytes; }

 private:
  static constexpr std::size_t kRuleBytes = 32;  // two rules per cache line
  static constexpr std::uint64_t kInstrPerRule = 40;

  std::vector<net::FirewallRule> rules_;
  sim::Region region_;
  bool attached_ = false;
  mutable std::vector<sim::Addr> scan_scratch_;  // batched-scan staging (host side)
};

}  // namespace pp::apps
