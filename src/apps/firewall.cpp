#include "apps/firewall.hpp"

#include "base/check.hpp"

namespace pp::apps {

bool rule_matches(const net::FirewallRule& r, const PacketFields& p) {
  if (r.src_len > 0) {
    const std::uint32_t mask =
        r.src_len >= 32 ? ~0U : ~((1U << (32U - r.src_len)) - 1U);
    if ((p.src & mask) != (r.src_prefix & mask)) return false;
  }
  if (r.dst_len > 0) {
    const std::uint32_t mask =
        r.dst_len >= 32 ? ~0U : ~((1U << (32U - r.dst_len)) - 1U);
    if ((p.dst & mask) != (r.dst_prefix & mask)) return false;
  }
  if (p.sport < r.sport_min || p.sport > r.sport_max) return false;
  if (p.dport < r.dport_min || p.dport > r.dport_max) return false;
  if (r.proto != 0 && r.proto != p.proto) return false;
  return true;
}

RuleSet::RuleSet(std::vector<net::FirewallRule> rules) : rules_(std::move(rules)) {
  PP_CHECK(!rules_.empty());
}

void RuleSet::attach(sim::AddressSpace& as, int domain) {
  PP_CHECK(!attached_);
  region_ = sim::Region::make(as, domain, kRuleBytes, rules_.size());
  attached_ = true;
}

void RuleSet::prewarm(sim::Core& core) const {
  if (attached_) sim::warm_region(core, region_);
}

std::int32_t RuleSet::match(const PacketFields& pkt) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rule_matches(rules_[i], pkt)) return static_cast<std::int32_t>(i);
  }
  return -1;
}

void RuleSet::match_sim_batch(sim::Core& core, const PacketFields* pkts, std::int32_t* out,
                              std::size_t n) const {
  PP_CHECK(attached_);
  scan_scratch_.clear();
  std::uint64_t rules_scanned = 0;
  for (std::size_t p = 0; p < n; ++p) {
    sim::Addr last_line = ~sim::Addr{0};
    out[p] = -1;
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      const sim::Addr a = region_.at(i);
      if (sim::line_of(a) != last_line) {
        scan_scratch_.push_back(a);
        last_line = sim::line_of(a);
      }
      ++rules_scanned;
      if (rule_matches(rules_[i], pkts[p])) {
        out[p] = static_cast<std::int32_t>(i);
        break;
      }
    }
  }
  core.access_many(scan_scratch_.data(), scan_scratch_.size(), sim::AccessType::kRead,
                   /*dependent=*/false);
  core.compute(kInstrPerRule * rules_scanned);
}

std::int32_t RuleSet::match_sim(sim::Core& core, const PacketFields& pkt) const {
  PP_CHECK(attached_);
  sim::Addr last_line = ~sim::Addr{0};
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    // One touch per line (rules are packed two per line, scanned linearly).
    const sim::Addr a = region_.at(i);
    if (sim::line_of(a) != last_line) {
      core.load(a, /*dependent=*/false);
      last_line = sim::line_of(a);
    }
    core.compute(kInstrPerRule);
    if (rule_matches(rules_[i], pkt)) return static_cast<std::int32_t>(i);
  }
  return -1;
}

}  // namespace pp::apps
