// Karp-Rabin rolling fingerprints over a fixed byte window, with low-bit
// sampling — the content-addressing primitive of protocol-independent
// redundancy elimination (Spring & Wetherall, SIGCOMM 2000), the paper's RE
// workload.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pp::apps {

class Rabin {
 public:
  static constexpr std::size_t kWindow = 64;
  /// Select ~1/32 of byte positions as anchors (fp low bits == 0).
  static constexpr std::uint64_t kSampleMask = 0x1f;

  struct Anchor {
    std::uint32_t pos = 0;  // start of the window within the buffer
    std::uint64_t fp = 0;
  };

  /// Fingerprint of data[pos, pos+kWindow) computed from scratch.
  [[nodiscard]] static std::uint64_t fingerprint(std::span<const std::uint8_t> data,
                                                 std::size_t pos);

  /// All sampled anchors of `data`, computed with the rolling recurrence
  /// (identical to recomputation — property-tested). Buffers shorter than
  /// the window yield no anchors.
  [[nodiscard]] static std::vector<Anchor> sample(std::span<const std::uint8_t> data,
                                                  std::uint64_t mask = kSampleMask);

 private:
  static constexpr std::uint64_t kMul = 0x9ddfea08eb382d69ULL;  // odd multiplier
};

}  // namespace pp::apps
