#include "apps/aes.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace pp::apps {

namespace {

constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16};

constexpr std::array<std::uint8_t, 256> make_inv_sbox() {
  std::array<std::uint8_t, 256> inv{};
  for (std::size_t i = 0; i < 256; ++i) inv[kSbox[i]] = static_cast<std::uint8_t>(i);
  return inv;
}
constexpr std::array<std::uint8_t, 256> kInvSbox = make_inv_sbox();

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

constexpr std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if ((b & 1U) != 0) p ^= a;
    a = xtime(a);
    b >>= 1U;
  }
  return p;
}

using State = std::array<std::uint8_t, 16>;  // column-major, as in FIPS-197

void add_round_key(State& s, const std::uint8_t* rk) {
  for (int i = 0; i < 16; ++i) s[static_cast<std::size_t>(i)] ^= rk[i];
}

void sub_bytes(State& s) {
  for (auto& b : s) b = kSbox[b];
}
void inv_sub_bytes(State& s) {
  for (auto& b : s) b = kInvSbox[b];
}

// Row r of the state is bytes {r, r+4, r+8, r+12}.
void shift_rows(State& s) {
  State t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(r + 4 * c)] = t[static_cast<std::size_t>(r + 4 * ((c + r) % 4))];
    }
  }
}
void inv_shift_rows(State& s) {
  State t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(r + 4 * ((c + r) % 4))] = t[static_cast<std::size_t>(r + 4 * c)];
    }
  }
}

void mix_columns(State& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void inv_mix_columns(State& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
    col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
    col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
    col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
  }
}

}  // namespace

const std::array<std::uint8_t, 256>& Aes128::sbox() { return kSbox; }

Aes128::Aes128(std::span<const std::uint8_t, kKeyBytes> key) {
  std::copy(key.begin(), key.end(), round_keys_.begin());
  std::uint8_t rcon = 0x01;
  for (std::size_t i = kKeyBytes; i < round_keys_.size(); i += 4) {
    std::uint8_t w[4];
    std::copy_n(round_keys_.begin() + static_cast<std::ptrdiff_t>(i - 4), 4, w);
    if (i % kKeyBytes == 0) {
      // RotWord + SubWord + Rcon
      const std::uint8_t t = w[0];
      w[0] = static_cast<std::uint8_t>(kSbox[w[1]] ^ rcon);
      w[1] = kSbox[w[2]];
      w[2] = kSbox[w[3]];
      w[3] = kSbox[t];
      rcon = xtime(rcon);
    }
    for (std::size_t j = 0; j < 4; ++j) {
      round_keys_[i + j] = static_cast<std::uint8_t>(round_keys_[i + j - kKeyBytes] ^ w[j]);
    }
  }
}

void Aes128::encrypt_block(std::span<const std::uint8_t, kBlockBytes> in,
                           std::span<std::uint8_t, kBlockBytes> out) const {
  State s;
  std::copy(in.begin(), in.end(), s.begin());
  add_round_key(s, round_keys_.data());
  for (int round = 1; round < kRounds; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, round_keys_.data() + 16 * round);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, round_keys_.data() + 16 * kRounds);
  std::copy(s.begin(), s.end(), out.begin());
}

void Aes128::decrypt_block(std::span<const std::uint8_t, kBlockBytes> in,
                           std::span<std::uint8_t, kBlockBytes> out) const {
  State s;
  std::copy(in.begin(), in.end(), s.begin());
  add_round_key(s, round_keys_.data() + 16 * kRounds);
  for (int round = kRounds - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, round_keys_.data() + 16 * round);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, round_keys_.data());
  std::copy(s.begin(), s.end(), out.begin());
}

void Aes128::ctr_xcrypt(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                        std::span<const std::uint8_t, 12> nonce, std::uint32_t counter0) const {
  PP_CHECK(out.size() >= in.size());
  std::array<std::uint8_t, kBlockBytes> ctr{};
  std::array<std::uint8_t, kBlockBytes> keystream{};
  std::copy(nonce.begin(), nonce.end(), ctr.begin());
  std::uint32_t counter = counter0;
  for (std::size_t off = 0; off < in.size(); off += kBlockBytes) {
    ctr[12] = static_cast<std::uint8_t>(counter >> 24);
    ctr[13] = static_cast<std::uint8_t>(counter >> 16);
    ctr[14] = static_cast<std::uint8_t>(counter >> 8);
    ctr[15] = static_cast<std::uint8_t>(counter);
    ++counter;
    encrypt_block(std::span<const std::uint8_t, kBlockBytes>{ctr},
                  std::span<std::uint8_t, kBlockBytes>{keystream});
    const std::size_t n = std::min(kBlockBytes, in.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = in[off + i] ^ keystream[i];
  }
}

}  // namespace pp::apps
