// NetFlow-style per-flow statistics table (the paper's MON workload,
// Section 2.1): hash the 5-tuple, index a table of per-flow entries, update
// packet/byte counts and timestamps. 100k entries in the paper.
//
// Open addressing with linear probing over power-of-two buckets; entries are
// 32 bytes so two share a cache line. Real accounting (verified by tests)
// plus simulated touches for the probe/update path ("flow_statistics" in
// Figure 7 — the uniformly-accessed structure the appendix model captures
// best).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "base/hash.hpp"
#include "net/generators.hpp"
#include "sim/address_space.hpp"
#include "sim/core.hpp"

namespace pp::apps {

struct FlowRecord {
  net::FiveTuple key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t first_ns = 0;
  std::uint64_t last_ns = 0;
};

class FlowTable {
 public:
  /// `buckets` must be a power of two; the table holds at most ~85% of that.
  explicit FlowTable(std::size_t buckets);

  void attach(sim::AddressSpace& as, int domain);

  /// Account one packet (host-side; tests use this).
  /// Returns false when the table is full and the flow is new.
  bool update(const net::FiveTuple& t, std::uint32_t bytes, std::uint64_t now_ns);

  /// Account one packet, charging hash + probe + update to `core`.
  bool update_sim(sim::Core& core, const net::FiveTuple& t, std::uint32_t bytes,
                  std::uint64_t now_ns);

  /// Account a burst of `n` packets (hash-probe burst). Host-side updates
  /// run packet by packet — later packets in the burst see earlier
  /// insertions — while the simulated probe loads and entry stores are
  /// issued as per-burst access_many calls (identical addresses and
  /// dependent-chain latency; counter bookkeeping applied once per burst).
  /// Returns the number of packets rejected because the table was full.
  std::size_t update_sim_batch(sim::Core& core, const net::FiveTuple* ts,
                               const std::uint32_t* bytes, std::uint64_t now_ns,
                               std::size_t n);

  [[nodiscard]] std::optional<FlowRecord> find(const net::FiveTuple& t) const;
  [[nodiscard]] std::size_t size() const { return used_; }
  [[nodiscard]] std::size_t buckets() const { return slots_.size(); }
  [[nodiscard]] std::size_t sim_bytes() const { return slots_.size() * kEntryBytes; }

  /// Expire flows idle since `idle_cutoff_ns` or started before
  /// `active_cutoff_ns`; exported records go to `sink`. Returns the number
  /// exported. (NetFlow active/inactive timeout semantics.)
  std::size_t expire(std::uint64_t idle_cutoff_ns, std::uint64_t active_cutoff_ns,
                     const std::function<void(const FlowRecord&)>& sink);

  [[nodiscard]] static std::uint64_t hash_tuple(const net::FiveTuple& t);

  /// Touch all bucket lines (warm start for measurements).
  void prewarm(sim::Core& core) const;

 private:
  static constexpr std::size_t kEntryBytes = 32;

  struct Slot {
    FlowRecord rec;
    bool used = false;
  };

  /// Probe for the slot holding `t` or the first free slot; -1 if the probe
  /// chain is exhausted. When `core` is non-null, each probed slot is a
  /// dependent simulated touch.
  [[nodiscard]] std::int64_t probe(const net::FiveTuple& t, sim::Core* core) const;

  /// Same probe, appending the simulated address of every probed slot to
  /// `addrs` instead of touching the core (batched path).
  [[nodiscard]] std::int64_t probe_collect(const net::FiveTuple& t,
                                           std::vector<sim::Addr>& addrs) const;

  bool update_at(std::int64_t idx, const net::FiveTuple& t, std::uint32_t bytes,
                 std::uint64_t now_ns);

  std::vector<Slot> slots_;
  std::size_t used_ = 0;
  std::size_t max_used_;
  sim::Region region_;
  bool attached_ = false;
  std::vector<sim::Addr> probe_scratch_;  // batched-probe staging (host side)
  std::vector<sim::Addr> store_scratch_;
};

}  // namespace pp::apps
