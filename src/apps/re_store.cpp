#include "apps/re_store.hpp"

#include "base/check.hpp"

namespace pp::apps {

PacketStore::PacketStore(std::size_t capacity_bytes) {
  PP_CHECK(capacity_bytes >= 4096);
  ring_.assign(capacity_bytes, 0);
}

void PacketStore::attach(sim::AddressSpace& as, int domain) {
  PP_CHECK(!attached_);
  region_ = sim::Region::make(as, domain, 1, ring_.size());
  attached_ = true;
}

std::uint64_t PacketStore::append(std::span<const std::uint8_t> data, sim::Core* core,
                                  sim::StreamBurst* burst) {
  PP_CHECK(data.size() <= ring_.size());
  const std::uint64_t offset = end_;
  for (std::size_t i = 0; i < data.size(); ++i) {
    ring_[(offset + i) % ring_.size()] = data[i];
  }
  if (core != nullptr && attached_) {
    // The ring write may wrap; charge each span separately (deferred into
    // the burst when batching).
    const std::uint64_t start_mod = offset % ring_.size();
    const std::size_t first = std::min(data.size(), ring_.size() - start_mod);
    sim::stream_or_defer(*core, burst, region_.base() + start_mod, first,
                         sim::AccessType::kWrite);
    if (first < data.size()) {
      sim::stream_or_defer(*core, burst, region_.base(), data.size() - first,
                           sim::AccessType::kWrite);
    }
  }
  end_ += data.size();
  return offset;
}

bool PacketStore::contains(std::uint64_t offset, std::size_t len) const {
  if (offset + len > end_) return false;                    // beyond newest
  if (end_ - offset > ring_.size()) return false;           // overwritten
  return len <= ring_.size();
}

bool PacketStore::read(std::uint64_t offset, std::span<std::uint8_t> out,
                       sim::Core* core) const {
  if (!contains(offset, out.size())) return false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = ring_[(offset + i) % ring_.size()];
  }
  if (core != nullptr && attached_) {
    const std::uint64_t start_mod = offset % ring_.size();
    const std::size_t first = std::min(out.size(), ring_.size() - start_mod);
    core->stream(region_.base() + start_mod, first, sim::AccessType::kRead);
    if (first < out.size()) {
      core->stream(region_.base(), out.size() - first, sim::AccessType::kRead);
    }
  }
  return true;
}

bool PacketStore::matches(std::uint64_t offset, std::span<const std::uint8_t> expect) const {
  if (!contains(offset, expect.size())) return false;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    if (ring_[(offset + i) % ring_.size()] != expect[i]) return false;
  }
  return true;
}

std::size_t PacketStore::extend_match(std::uint64_t offset,
                                      std::span<const std::uint8_t> data) const {
  std::size_t n = 0;
  while (n < data.size() && contains(offset, n + 1) &&
         ring_[(offset + n) % ring_.size()] == data[n]) {
    ++n;
  }
  return n;
}

FingerprintTable::FingerprintTable(std::size_t slots) {
  PP_CHECK(slots >= 16 && (slots & (slots - 1)) == 0);
  fps_.assign(slots, 0);
  offsets_.assign(slots, 0);
  used_.assign(slots, false);
}

void FingerprintTable::attach(sim::AddressSpace& as, int domain) {
  PP_CHECK(!attached_);
  region_ = sim::Region::make(as, domain, kSlotBytes, fps_.size());
  attached_ = true;
}

void FingerprintTable::put(std::uint64_t fp, std::uint64_t offset, sim::Core* core) {
  const std::size_t s = slot_of(fp);
  fps_[s] = fp;
  offsets_[s] = offset;
  used_[s] = true;
  if (core != nullptr && attached_) core->store(region_.at(s));
}

std::optional<std::uint64_t> FingerprintTable::get(std::uint64_t fp, sim::Core* core) const {
  const std::size_t s = slot_of(fp);
  if (core != nullptr && attached_) core->load(region_.at(s));
  if (!used_[s] || fps_[s] != fp) return std::nullopt;
  return offsets_[s];
}

}  // namespace pp::apps
