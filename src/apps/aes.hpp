// AES-128 (FIPS-197): key expansion, block encryption/decryption, and CTR
// mode — the paper's VPN workload applies AES-128 to every packet
// (Section 2.1, "a representative form of CPU-intensive packet processing").
//
// This is a real, test-vector-verified implementation (byte-oriented S-box /
// ShiftRows / MixColumns). The simulated cost of encryption is charged by
// the VPN element (instructions per byte plus S-box table touches); this
// module is pure computation.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace pp::apps {

class Aes128 {
 public:
  static constexpr std::size_t kBlockBytes = 16;
  static constexpr std::size_t kKeyBytes = 16;
  static constexpr int kRounds = 10;

  /// Expand the 128-bit key into the round-key schedule.
  explicit Aes128(std::span<const std::uint8_t, kKeyBytes> key);

  /// Encrypt/decrypt one 16-byte block (out may alias in).
  void encrypt_block(std::span<const std::uint8_t, kBlockBytes> in,
                     std::span<std::uint8_t, kBlockBytes> out) const;
  void decrypt_block(std::span<const std::uint8_t, kBlockBytes> in,
                     std::span<std::uint8_t, kBlockBytes> out) const;

  /// CTR mode over an arbitrary-length buffer (encrypt == decrypt).
  /// `nonce` forms the upper 12 bytes of the counter block; the low 4 bytes
  /// count blocks starting from `counter0`.
  void ctr_xcrypt(std::span<const std::uint8_t> in, std::span<std::uint8_t> out,
                  std::span<const std::uint8_t, 12> nonce, std::uint32_t counter0 = 0) const;

  /// Round keys (exposed for the key-schedule test vectors).
  [[nodiscard]] const std::array<std::uint8_t, kKeyBytes*(kRounds + 1)>& round_keys() const {
    return round_keys_;
  }

  /// The forward S-box (the VPN element charges simulated table touches
  /// against a region mirroring it).
  [[nodiscard]] static const std::array<std::uint8_t, 256>& sbox();

 private:
  std::array<std::uint8_t, kKeyBytes*(kRounds + 1)> round_keys_{};
};

}  // namespace pp::apps
