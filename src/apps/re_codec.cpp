#include "apps/re_codec.hpp"

#include "base/check.hpp"
#include "net/byteorder.hpp"

namespace pp::apps {

namespace {
constexpr std::uint8_t kLiteral = 0x4C;
constexpr std::uint8_t kMatch = 0x4D;
constexpr std::uint64_t kInstrPerByte = 13;  // rolling hash + bookkeeping
constexpr std::uint64_t kInstrPerProbe = 12;

void emit_literal(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t n = std::min<std::size_t>(bytes.size() - pos, 0xffff);
    out.push_back(kLiteral);
    out.push_back(static_cast<std::uint8_t>(n >> 8));
    out.push_back(static_cast<std::uint8_t>(n & 0xff));
    out.insert(out.end(), bytes.begin() + static_cast<std::ptrdiff_t>(pos),
               bytes.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
  }
}

void emit_match(std::vector<std::uint8_t>& out, std::uint64_t offset, std::size_t len) {
  PP_CHECK(len <= 0xffff);
  out.push_back(kMatch);
  std::uint8_t buf[8];
  net::store_be32(buf, static_cast<std::uint32_t>(offset >> 32));
  net::store_be32(buf + 4, static_cast<std::uint32_t>(offset & 0xffffffffU));
  out.insert(out.end(), buf, buf + 8);
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
}
}  // namespace

std::vector<std::uint8_t> ReEncoder::encode(std::span<const std::uint8_t> payload,
                                            sim::Core* core, sim::StreamBurst* burst) {
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 8);

  // 1. Fingerprint the payload (rolling window over every byte).
  const std::vector<Rabin::Anchor> anchors = Rabin::sample(payload);
  if (core != nullptr) {
    core->compute(kInstrPerByte * payload.size());
    // The scan reads the payload once.
    // (Payload lines were already touched by earlier elements; these are
    // typically L1 hits.)
  }
  stats_.anchors += anchors.size();

  // 2. Greedy left-to-right: at each anchor beyond the emitted frontier,
  //    probe the table, verify against the store, extend, and emit.
  std::size_t frontier = 0;  // payload bytes already emitted
  for (const Rabin::Anchor& a : anchors) {
    if (a.pos < frontier) continue;
    if (core != nullptr) core->compute(kInstrPerProbe);
    const auto hit = table_.get(a.fp, core);
    if (!hit.has_value()) continue;
    stats_.table_hits += 1;
    const std::uint64_t cand = *hit;
    const std::span<const std::uint8_t> rest = payload.subspan(a.pos);
    if (!store_.matches(cand, rest.first(std::min(rest.size(), Rabin::kWindow)))) {
      // Stale/colliding table entry.
      if (core != nullptr) {
        sim::stream_or_defer(*core, burst, store_.sim_addr(cand), Rabin::kWindow,
                             sim::AccessType::kRead);
      }
      continue;
    }
    const std::size_t len = store_.extend_match(cand, rest);
    if (core != nullptr) {
      sim::stream_or_defer(*core, burst, store_.sim_addr(cand), len, sim::AccessType::kRead);
    }
    if (len < kMinMatch) continue;
    const std::size_t capped = std::min<std::size_t>(len, 0xffff);
    emit_literal(out, payload.subspan(frontier, a.pos - frontier));
    emit_match(out, cand, capped);
    stats_.matches += 1;
    stats_.matched_bytes += capped;
    frontier = a.pos + capped;
  }
  emit_literal(out, payload.subspan(frontier));

  // 3. Store the original payload and register its anchors.
  const std::uint64_t base = store_.append(payload, core, burst);
  for (const Rabin::Anchor& a : anchors) {
    table_.put(a.fp, base + a.pos, core);
  }

  stats_.payload_bytes += payload.size();
  stats_.encoded_bytes += out.size();
  return out;
}

bool ReDecoder::decode(std::span<const std::uint8_t> encoded, std::vector<std::uint8_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < encoded.size()) {
    const std::uint8_t type = encoded[pos];
    if (type == kLiteral) {
      if (pos + 3 > encoded.size()) return false;
      const std::size_t n = (static_cast<std::size_t>(encoded[pos + 1]) << 8) | encoded[pos + 2];
      pos += 3;
      if (pos + n > encoded.size()) return false;
      out.insert(out.end(), encoded.begin() + static_cast<std::ptrdiff_t>(pos),
                 encoded.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
    } else if (type == kMatch) {
      if (pos + 11 > encoded.size()) return false;
      const std::uint64_t offset =
          (static_cast<std::uint64_t>(net::load_be32(&encoded[pos + 1])) << 32) |
          net::load_be32(&encoded[pos + 5]);
      const std::size_t n = (static_cast<std::size_t>(encoded[pos + 9]) << 8) | encoded[pos + 10];
      pos += 11;
      const std::size_t start = out.size();
      out.resize(start + n);
      if (!store_.read(offset, std::span<std::uint8_t>{out.data() + start, n})) return false;
    } else {
      return false;
    }
  }
  // Keep the mirrored store in sync with the encoder's.
  store_.append(out);
  return true;
}

}  // namespace pp::apps
