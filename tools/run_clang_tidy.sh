#!/bin/sh
# clang-tidy gate runner (docs/static_analysis.md).
#
# Runs the curated .clang-tidy check set over every first-party translation
# unit in the compile database (src/, tools/, bench/ — tests are covered by
# their own suites and by pplint). WarningsAsErrors:'*' in .clang-tidy makes
# any finding fatal, so this script is a pass/fail gate.
#
# The dev container ships only gcc, so the gate degrades explicitly: no
# clang-tidy binary => exit 77 (the CTest SKIP_RETURN_CODE, reported as a
# skipped test, never a silent pass). CI's lint job installs clang-tidy and
# runs this for real. Override the binary with CLANG_TIDY=... if yours is
# versioned (clang-tidy-15 etc.).
#
# Usage: tools/run_clang_tidy.sh [build-dir]   (default: build)
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: $tidy not installed; skipping (install clang-tidy to run the gate)" >&2
  exit 77
fi

if [ ! -f "$build/compile_commands.json" ]; then
  echo "run_clang_tidy: $build/compile_commands.json missing; configure with cmake first" >&2
  echo "(CMAKE_EXPORT_COMPILE_COMMANDS is always on in this repo's CMakeLists)" >&2
  exit 2
fi

# First-party TUs only: the compile database also carries GTest etc. when
# vendored, and tests/ tune their assertions to gcc; the gate's surface is
# the shipped library, binaries, and tools.
files=$(cd "$root" && find src tools bench -name '*.cpp' 2>/dev/null | sort)
if [ -z "$files" ]; then
  echo "run_clang_tidy: no sources found under $root" >&2
  exit 2
fi

status=0
for f in $files; do
  if ! (cd "$root" && "$tidy" -p "$build" --quiet "$f"); then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: findings above (checks: see .clang-tidy)" >&2
else
  echo "run_clang_tidy: clean ($(printf '%s\n' "$files" | wc -l | tr -d ' ') TUs)" >&2
fi
exit "$status"
