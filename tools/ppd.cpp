// ppd — the persistent prediction daemon (server half of the NSD-style
// server/control split; ppctl --connect is the control half).
//
// Holds one warm ProfileStore for its whole lifetime and serves
// ExperimentSpec requests over a Unix-domain socket (framing and failure
// semantics: docs/ppd.md). The process is deliberately thin: flag parsing,
// signal wiring and artifact stdout capture live here; every serving
// decision — deadlines, admission, shedding, single-flight, drain — lives
// in api::Server so the in-process tests exercise the real code.
//
//   ppd --socket PATH [--listen HOST:PORT] [--workers N] [--max-queue N]
//       [--retry-after-ms N] [--max-frame-bytes N] [--backlog N]
//
// --listen adds an IPv4 TCP listener speaking the same ppd1 framing as the
// Unix socket (port 0 = kernel-chosen; the bound port prints to stderr).
// The ppd1 protocol has no authentication — bind loopback (the default
// host) unless the network is trusted; see docs/ppd.md, Transports.
//
// Session configuration comes from the environment exactly like one-shot
// ppctl (REPRO_SCALE, SIM_FIDELITY, PROFILE_CACHE, PROFILE_CACHE_RO,
// PP_RUN_BUDGET, PP_FAULTS...), so a daemon restarted on the same
// PROFILE_CACHE starts warm and a result served by ppd is byte-identical
// to the same spec run directly.
//
// SIGTERM/SIGINT begin a graceful drain: stop accepting, finish or
// deadline-out in-flight requests, flush final stats to stderr, exit 0.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>

#include <unistd.h>

#include "api/client.hpp"  // parse_endpoint for --listen
#include "api/serve.hpp"
#include "base/fault.hpp"
#include "base/strings.hpp"
#include "figures.hpp"

namespace {

using namespace pp;

api::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->begin_drain();
}

int usage(FILE* to) {
  std::fprintf(to,
               "ppd — persistent prediction daemon for the pp platform\n"
               "\n"
               "usage: ppd --socket PATH [--listen HOST:PORT] [flags]\n"
               "\n"
               "flags:\n"
               "  --socket PATH          Unix-domain socket to listen on\n"
               "  --listen HOST:PORT     IPv4 TCP listener (port 0 = kernel-chosen;\n"
               "                         the bound port prints to stderr). The ppd1\n"
               "                         protocol has NO authentication — keep the bind\n"
               "                         on loopback unless the network is trusted\n"
               "                         (docs/ppd.md, Transports)\n"
               "  --workers N            concurrently executing requests   (default 2)\n"
               "  --max-queue N          waiting requests before shedding  (default 8)\n"
               "  --retry-after-ms N     hint sent with overloaded errors  (default 50)\n"
               "  --max-frame-bytes N    request frame ceiling             (default 4194304)\n"
               "  --backlog N            accept backlog                    (default 64)\n"
               "\n"
               "At least one of --socket / --listen is required. Scale, fidelity,\n"
               "caches and budgets come from the environment, exactly like ppctl (see\n"
               "docs/api.md); protocol and lifecycle: docs/ppd.md.\n"
               "Drive it with: ppctl run --connect PATH|HOST:PORT spec.json\n");
  return to == stdout ? 0 : 2;
}

int fail(const std::string& msg) {
  std::fprintf(stderr, "ppd: %s\n", msg.c_str());
  return 2;
}

/// Serve an artifact spec by running the bench artifact with stdout
/// captured into a buffer (serialized — stdout redirection is per-process).
/// The Engine inside run_artifact resolves to the same process-global store
/// the server uses, so artifacts stay warm across requests too.
int run_artifact_captured(const api::ExperimentSpec& spec,
                          std::chrono::steady_clock::time_point deadline, std::string& out) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lk(mu);
  std::fflush(stdout);
  FILE* tmp = std::tmpfile();
  if (tmp == nullptr) return 1;
  const int saved = ::dup(STDOUT_FILENO);
  if (saved < 0 || ::dup2(fileno(tmp), STDOUT_FILENO) < 0) {
    if (saved >= 0) ::close(saved);
    std::fclose(tmp);
    return 1;
  }
  api::SessionOptions base = api::SessionOptions::from_env();
  base.wall_deadline = deadline;
  const int rc = pp::bench::run_artifact(spec, base);
  std::fflush(stdout);
  ::dup2(saved, STDOUT_FILENO);
  ::close(saved);
  const long n = std::ftell(tmp);
  std::rewind(tmp);
  out.assign(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0 && std::fread(out.data(), 1, out.size(), tmp) != out.size()) {
    std::fclose(tmp);
    return 1;
  }
  std::fclose(tmp);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  api::ServerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    // Numeric flags parse strictly (parse_i64): "abc", "2k", "1.5", "-3" or
    // anything out of range is a named usage error (exit 2), never a silent
    // default or a wrapped value.
    const auto int_flag = [&](const char* name, std::int64_t lo, std::int64_t hi,
                              std::int64_t& out) -> bool {
      const char* v = value();
      std::int64_t n = 0;
      if (v == nullptr || !parse_i64(v, n) || n < lo || n > hi) {
        std::fprintf(stderr, "ppd: %s needs an integer in [%lld, %lld], got %s\n", name,
                     static_cast<long long>(lo), static_cast<long long>(hi),
                     v == nullptr ? "nothing" : strformat("\"%s\"", v).c_str());
        return false;
      }
      out = n;
      return true;
    };
    std::int64_t n = 0;
    if (a == "--help" || a == "-h") return usage(stdout);
    if (a == "--socket") {
      const char* v = value();
      if (v == nullptr) return fail("--socket needs a path");
      opts.socket_path = v;
    } else if (a == "--listen") {
      const char* v = value();
      if (v == nullptr) return fail("--listen needs HOST:PORT");
      api::Endpoint ep;
      std::string err;
      if (!api::parse_endpoint(v, ep, err, /*allow_ephemeral_port=*/true) || !ep.is_tcp()) {
        return fail(err.empty() ? strformat("--listen needs HOST:PORT, got \"%s\"", v)
                                : "--listen: " + err);
      }
      opts.listen_host = ep.host;
      opts.listen_port = ep.port;
    } else if (a == "--workers") {
      if (!int_flag("--workers", 1, 64, n)) return 2;
      opts.workers = static_cast<int>(n);
    } else if (a == "--max-queue") {
      if (!int_flag("--max-queue", 0, 4096, n)) return 2;
      opts.max_queue = static_cast<int>(n);
    } else if (a == "--retry-after-ms") {
      if (!int_flag("--retry-after-ms", 1, 60000, n)) return 2;
      opts.retry_after_ms = static_cast<int>(n);
    } else if (a == "--max-frame-bytes") {
      if (!int_flag("--max-frame-bytes", 64, 64 << 20, n)) return 2;
      opts.max_frame_bytes = static_cast<std::size_t>(n);
    } else if (a == "--backlog") {
      if (!int_flag("--backlog", 1, 4096, n)) return 2;
      opts.tcp_backlog = static_cast<int>(n);
    } else {
      return fail("unknown flag \"" + a + "\" (see ppd --help)");
    }
  }
  if (opts.socket_path.empty() && opts.listen_port < 0) {
    usage(stderr);
    return fail("at least one of --socket / --listen is required");
  }
  opts.artifact_runner = run_artifact_captured;

  api::Server server(opts);
  std::string err;
  if (!server.listen(&err)) return fail(err);
  g_server = &server;

  // A client vanishing mid-response must surface as a write error on that
  // connection, never kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  if (!opts.socket_path.empty()) {
    std::fprintf(stderr, "[ppd] listening on %s (workers=%d max_queue=%d)\n",
                 opts.socket_path.c_str(), opts.workers, opts.max_queue);
  }
  if (server.tcp_port() >= 0) {
    // Exact bound port (resolves --listen HOST:0) — lifecycle tests and
    // scripts grep this line to learn where to connect.
    std::fprintf(stderr, "[ppd] listening on tcp %s:%d (workers=%d max_queue=%d)\n",
                 opts.listen_host.empty() ? "127.0.0.1" : opts.listen_host.c_str(),
                 server.tcp_port(), opts.workers, opts.max_queue);
  }
  if (FaultInjector::global().enabled()) {
    std::fprintf(stderr, "[ppd] fault injection enabled (PP_FAULTS)\n");
  }
  return server.serve();
}
