#include "pplint/lint.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/fault.hpp"
#include "base/strings.hpp"

namespace pp::lint {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

[[nodiscard]] bool is_ident(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

/// Blank out // and /* */ comments (and the contents of string/char
/// literals when `strip_strings`), preserving byte offsets and newlines so
/// line numbers survive. The fault-site rule needs literals intact; every
/// other rule wants them gone so `"PP_CHECK"` in a message cannot trip it.
[[nodiscard]] std::string strip_comments(const std::string& in, bool strip_strings) {
  std::string out = in;
  enum class St : std::uint8_t { kCode, kLine, kBlock, kStr, kChar };
  St st = St::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') st = St::kCode;
        else out[i] = ' ';
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          if (strip_strings) {
            out[i] = ' ';
            if (next != '\0' && next != '\n') out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (strip_strings && c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
    }
  }
  return out;
}

[[nodiscard]] std::vector<std::string> to_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// `token` as a whole identifier; when `call_only`, it must be followed
/// (after whitespace) by an opening parenthesis.
[[nodiscard]] bool has_token(const std::string& line, const char* token, bool call_only) {
  const std::size_t n = std::string(token).size();
  for (std::size_t at = line.find(token); at != std::string::npos;
       at = line.find(token, at + 1)) {
    if (at > 0 && is_ident(line[at - 1])) continue;
    const std::size_t end = at + n;
    if (end < line.size() && is_ident(line[end])) continue;
    if (!call_only) return true;
    std::size_t p = end;
    while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
    if (p < line.size() && line[p] == '(') return true;
  }
  return false;
}

struct Pattern {
  const char* needle;   // substring ("::now(") or token, per `token`
  bool token;
  bool call_only;       // token must be a call (identifier followed by '(')
  const char* what;     // diagnostic text
};

[[nodiscard]] std::vector<Diagnostic> scan(const std::string& file, const std::string& text,
                                           const char* rule,
                                           const std::vector<Pattern>& patterns) {
  std::vector<Diagnostic> out;
  const std::vector<std::string> lines = to_lines(strip_comments(text, /*strip_strings=*/true));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const Pattern& p : patterns) {
      const bool hit = p.token ? has_token(lines[i], p.needle, p.call_only)
                               : lines[i].find(p.needle) != std::string::npos;
      if (hit) {
        out.push_back({file, static_cast<int>(i) + 1, rule, p.what});
        break;  // one diagnostic per line per rule
      }
    }
  }
  return out;
}

[[nodiscard]] bool in_sim_layers(const std::string& file) {
  return starts_with(file, "src/sim/") || starts_with(file, "src/core/") ||
         starts_with(file, "src/model/");
}

[[nodiscard]] bool in_isolation_paths(const std::string& file) {
  static const char* kFiles[] = {
      "src/api/session.cpp", "src/api/session.hpp", "src/api/serve.cpp", "src/api/serve.hpp",
      "src/api/frame.cpp",   "src/api/frame.hpp",   "src/api/client.cpp", "src/api/client.hpp",
  };
  return std::any_of(std::begin(kFiles), std::end(kFiles),
                     [&](const char* f) { return file == f; });
}

/// Per-line `pplint: allow(rule)` markers (raw text: markers live in
/// comments, which the match pass strips).
[[nodiscard]] std::vector<std::pair<int, std::string>> allow_markers(const std::string& text) {
  std::vector<std::pair<int, std::string>> out;
  const std::vector<std::string> lines = to_lines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::size_t at = lines[i].find("pplint: allow(");
    while (at != std::string::npos) {
      const std::size_t open = at + std::string("pplint: allow").size();
      const std::size_t close = lines[i].find(')', open);
      if (close == std::string::npos) break;
      out.emplace_back(static_cast<int>(i) + 1,
                       lines[i].substr(open + 1, close - open - 1));
      at = lines[i].find("pplint: allow(", close);
    }
  }
  return out;
}

}  // namespace

std::string format(const Diagnostic& d) {
  return strformat("%s:%d: [%s] %s", d.file.c_str(), d.line, d.rule.c_str(),
                   d.message.c_str());
}

std::vector<Diagnostic> check_getenv(const std::string& file, const std::string& text) {
  if (!starts_with(file, "src/")) return {};
  if (file == "src/api/options.cpp") return {};  // SessionOptions::from_env itself
  static const std::vector<Pattern> kPatterns = {
      {"getenv", true, false,
       "environment read outside SessionOptions::from_env (src/api/options.cpp) — "
       "route the knob through the audited parse"},
      {"secure_getenv", true, false,
       "environment read outside SessionOptions::from_env (src/api/options.cpp) — "
       "route the knob through the audited parse"},
  };
  return scan(file, text, "getenv", kPatterns);
}

std::vector<Diagnostic> check_nondeterminism(const std::string& file, const std::string& text) {
  if (!in_sim_layers(file)) return {};
  static const std::vector<Pattern> kPatterns = {
      {"rand", true, true, "rand() is not seeded by the scenario — use base/rng.hpp"},
      {"srand", true, true, "srand() is global state outside the scenario seed"},
      {"random_device", true, false,
       "std::random_device is nondeterministic — derive streams from the scenario seed"},
      {"time(nullptr", false, false, "wall-clock read breaks bit-identical replay"},
      {"time(NULL", false, false, "wall-clock read breaks bit-identical replay"},
      {"time(0)", false, false, "wall-clock read breaks bit-identical replay"},
      {"::now(", false, false,
       "wall-clock read in a simulation layer breaks bit-identical replay"},
      {"gettimeofday", true, false, "wall-clock read breaks bit-identical replay"},
      {"clock_gettime", true, false, "wall-clock read breaks bit-identical replay"},
      {"clock", true, true, "CPU-clock read breaks bit-identical replay"},
  };
  return scan(file, text, "nondeterminism", kPatterns);
}

std::vector<Diagnostic> check_noabort(const std::string& file, const std::string& text) {
  if (!in_isolation_paths(file)) return {};
  static const std::vector<Pattern> kPatterns = {
      {"PP_CHECK", true, false,
       "PP_CHECK aborts the process — the serve/session paths return structured errors "
       "(pp::Status / api::Error) instead"},
      {"PP_DCHECK", true, false,
       "PP_DCHECK aborts debug builds — the serve/session paths return structured errors "
       "instead"},
      {"abort", true, true, "abort() in an error-isolation path takes the daemon down"},
      {"assert", true, true,
       "assert() aborts debug builds — return a structured error instead"},
      {"exit", true, true, "exit() in an error-isolation path takes the daemon down"},
  };
  return scan(file, text, "noabort", kPatterns);
}

std::vector<Diagnostic> check_fault_sites(const std::string& file, const std::string& text,
                                          const std::unordered_set<std::string>& known_sites) {
  if (!starts_with(file, "src/")) return {};
  std::vector<Diagnostic> out;
  // Comments blanked, literals kept: the site names ARE literals.
  const std::string code = strip_comments(text, /*strip_strings=*/false);
  int line = 1;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '\n') {
      ++line;
      continue;
    }
    if (code[i] != 'f' || code.compare(i, 6, "fault(") != 0) continue;
    if (i > 0 && is_ident(code[i - 1])) continue;  // register_fault_site, known_fault_sites
    // Scan the argument list for string literals (handles the conditional
    // form `fault(flag ? "a" : "b")`).
    int depth = 0;
    int lit_line = line;
    for (std::size_t j = i + 5; j < code.size(); ++j) {
      if (code[j] == '\n') ++lit_line;
      if (code[j] == '(') ++depth;
      if (code[j] == ')' && --depth == 0) {
        i = j;
        break;
      }
      if (code[j] == '"') {
        std::string site;
        for (++j; j < code.size() && code[j] != '"'; ++j) site += code[j];
        if (known_sites.find(site) == known_sites.end()) {
          out.push_back({file, lit_line, "faultsite",
                         "fault site \"" + site +
                             "\" is not in the register_fault_site registry "
                             "(base/fault.cpp) — unreachable from PP_FAULTS and "
                             "missing from docs/robustness.md"});
        }
      }
    }
  }
  return out;
}

std::vector<Diagnostic> lint_text(const std::string& file, const std::string& text,
                                  const std::unordered_set<std::string>& known_sites) {
  std::vector<Diagnostic> all;
  for (auto&& d : check_getenv(file, text)) all.push_back(std::move(d));
  for (auto&& d : check_nondeterminism(file, text)) all.push_back(std::move(d));
  for (auto&& d : check_noabort(file, text)) all.push_back(std::move(d));
  for (auto&& d : check_fault_sites(file, text, known_sites)) all.push_back(std::move(d));

  // Apply suppressions, then flag the stale ones: an allow that matches no
  // diagnostic on its line is a rotted marker (or a typo'd rule name) and
  // must be removed — suppressions are part of the audited surface.
  const std::vector<std::pair<int, std::string>> allows = allow_markers(text);
  std::vector<Diagnostic> out;
  std::vector<bool> used(allows.size(), false);
  for (auto& d : all) {
    bool suppressed = false;
    for (std::size_t a = 0; a < allows.size(); ++a) {
      if (allows[a].first == d.line && allows[a].second == d.rule) {
        suppressed = true;
        used[a] = true;
      }
    }
    if (!suppressed) out.push_back(std::move(d));
  }
  for (std::size_t a = 0; a < allows.size(); ++a) {
    if (!used[a]) {
      out.push_back({file, allows[a].first, "allow",
                     "stale suppression: no [" + allows[a].second +
                         "] diagnostic fires on this line"});
    }
  }
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

std::vector<Diagnostic> check_header_standalone(const std::string& header,
                                                const std::vector<std::string>& include_dirs,
                                                const std::string& compiler) {
  static int counter = 0;
  const std::string tu = (fs::temp_directory_path() /
                          strformat("pplint_hdr_%d_%d.cpp", static_cast<int>(::getpid()),
                                    counter++))
                             .string();
  {
    std::ofstream out(tu, std::ios::trunc);
    out << "#include \"" << header << "\"\n";
  }
  std::string includes;
  for (const std::string& dir : include_dirs) includes += " -I" + dir;
  const std::string cmd = strformat("%s -std=c++20 -fsyntax-only%s %s 2>&1",
                                    compiler.c_str(), includes.c_str(), tu.c_str());
  std::string output;
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    fs::remove(tu);
    return {{header, 1, "header", "cannot spawn compiler: " + compiler}};
  }
  char buf[512];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) output += buf;
  const int rc = ::pclose(pipe);
  fs::remove(tu);
  if (rc == 0) return {};
  const std::size_t nl = output.find('\n');
  return {{header, 1, "header",
           "not self-contained (does not compile standalone): " +
               (nl == std::string::npos ? output : output.substr(0, nl))}};
}

std::vector<Diagnostic> lint_tree(const Options& opt) {
  std::unordered_set<std::string> sites = opt.known_sites;
  if (sites.empty()) {
    for (const FaultSiteInfo& s : known_fault_sites()) sites.insert(s.name);
  }

  const fs::path root(opt.root);
  const auto collect = [&](const char* dir, std::vector<std::string>& into) {
    if (!fs::is_directory(root / dir)) return;
    for (const fs::directory_entry& e : fs::recursive_directory_iterator(root / dir)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      into.push_back(fs::relative(e.path(), root).generic_string());
    }
  };
  std::vector<std::string> files;
  collect("src", files);
  collect("bench", files);
  collect("tools", files);
  std::sort(files.begin(), files.end());

  // src/ headers include each other as "dir/name.hpp" relative to src/;
  // bench/tools headers resolve against the repo root, src/, and bench/
  // (ppctl/ppd are built with the bench include dir for the artifact
  // runners).
  const std::vector<std::string> include_dirs = {
      (root / "src").string(), root.string(), (root / "bench").string()};

  std::vector<Diagnostic> out;
  for (const std::string& file : files) {
    std::ifstream in(root / file);
    std::ostringstream buf;
    buf << in.rdbuf();
    // The linter's own sources spell the marker and pattern strings out;
    // exempting them from the text rules avoids self-matches (the header
    // rule still applies).
    if (!starts_with(file, "tools/pplint/")) {
      for (auto&& d : lint_text(file, buf.str(), sites)) out.push_back(std::move(d));
    }
    if (opt.check_headers && file.size() > 4 && file.compare(file.size() - 4, 4, ".hpp") == 0) {
      const std::string rel = starts_with(file, "src/")
                                  ? file.substr(std::string("src/").size())
                                  : file;
      for (auto&& d : check_header_standalone(rel, include_dirs, opt.compiler)) {
        d.file = file;
        out.push_back(std::move(d));
      }
    }
  }
  return out;
}

}  // namespace pp::lint
