// pplint — repo-invariant linter CLI (docs/static_analysis.md).
//
//   pplint [--root DIR] [--no-headers] [--compiler CC]
//
// Scans src/** for violations of the platform's determinism and isolation
// contracts and prints gcc-style file:line diagnostics. Exit 0 = clean,
// 1 = violations, 2 = usage. Registered as the `lint_pplint_tree` CTest and
// run by the CI lint job.
#include <cstdio>
#include <cstring>
#include <string>

#include "pplint/lint.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: pplint [--root DIR] [--no-headers] [--compiler CC]\n"
               "  --root DIR     repo root to scan (default: the build-time source dir)\n"
               "  --no-headers   skip the standalone-header-compile rule\n"
               "  --compiler CC  compiler for the header rule (default: c++)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pp::lint::Options opt;
#ifdef PP_SOURCE_DIR
  opt.root = PP_SOURCE_DIR;
#endif
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (std::strcmp(argv[i], "--no-headers") == 0) {
      opt.check_headers = false;
    } else if (std::strcmp(argv[i], "--compiler") == 0 && i + 1 < argc) {
      opt.compiler = argv[++i];
    } else {
      return usage();
    }
  }
  if (opt.root.empty()) {
    std::fprintf(stderr, "pplint: no --root given and no build-time default\n");
    return usage();
  }

  const std::vector<pp::lint::Diagnostic> diags = pp::lint::lint_tree(opt);
  for (const pp::lint::Diagnostic& d : diags) {
    std::printf("%s\n", pp::lint::format(d).c_str());
  }
  std::fprintf(stderr, "pplint: %zu file-scope rule(s), %zu violation(s)\n",
               static_cast<std::size_t>(5), diags.size());
  return diags.empty() ? 0 : 1;
}
