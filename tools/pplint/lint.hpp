// pplint — the repo-invariant linter (docs/static_analysis.md).
//
// The platform's determinism contracts are conventions a compiler cannot
// check: every environment read goes through SessionOptions::from_env, the
// simulation layers never touch a wall clock or a PRNG the scenario seed
// does not control, the serve/session error-isolation paths never abort,
// every fault-injection literal names a registered site, and every public
// header compiles standalone. pplint turns each convention into a scan with
// file:line diagnostics, run as a CTest (lint_pplint_tree) and a CI job.
//
// A deliberate exception is suppressed inline with
//
//   // pplint: allow(<rule>) — <why>
//
// on the offending line; the marker is part of the diagnostic surface (an
// allow for a rule that never fires on that line is itself an error), so
// suppressions cannot rot silently.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

namespace pp::lint {

struct Diagnostic {
  std::string file;  // path as given (tree scans: relative to the root)
  int line = 0;      // 1-based
  std::string rule;  // e.g. "getenv"
  std::string message;
};

/// "file:line: [rule] message" — the gcc-style format editors and CI
/// annotations understand.
[[nodiscard]] std::string format(const Diagnostic& d);

// ---------------------------------------------------------------- the rules
//
// Each checker takes the file's repo-relative path (scoping is part of the
// rule) and its full text, and returns the violations it found. Comments are
// stripped before matching (a mention of PP_CHECK in prose is not a call),
// but `pplint: allow(...)` markers are honored wherever they appear.

/// Rule "getenv": every environment read outside SessionOptions::from_env
/// (src/api/options.cpp) bypasses the audited parse — typos stop warning and
/// snapshots diverge. Scope: src/**.
[[nodiscard]] std::vector<Diagnostic> check_getenv(const std::string& file,
                                                   const std::string& text);

/// Rule "nondeterminism": rand()/srand(), std::random_device, time(nullptr),
/// and wall-clock reads (steady_clock::now and friends, gettimeofday,
/// clock_gettime) inside the simulation layers break bit-identical replay.
/// Scope: src/sim/**, src/core/**, src/model/**.
[[nodiscard]] std::vector<Diagnostic> check_nondeterminism(const std::string& file,
                                                           const std::string& text);

/// Rule "noabort": PP_CHECK/PP_DCHECK/abort/assert in the serve/session
/// error-isolation paths turn an isolated request failure into a daemon
/// crash — those files return structured errors instead. Scope:
/// src/api/{session,serve,frame,client}.{hpp,cpp}.
[[nodiscard]] std::vector<Diagnostic> check_noabort(const std::string& file,
                                                    const std::string& text);

/// Rule "faultsite": every string literal passed to pp::fault(...) must name
/// a site in the register_fault_site registry, or the injection point is
/// unreachable from PP_FAULTS (and undocumented — the registry drives the
/// docs table). Scope: src/**.
[[nodiscard]] std::vector<Diagnostic> check_fault_sites(
    const std::string& file, const std::string& text,
    const std::unordered_set<std::string>& known_sites);

/// Rule "allow": an `pplint: allow(<rule>)` marker whose rule never fires on
/// that line (stale suppression, or a typo'd rule name). Produced by
/// lint_tree/lint_text, not a standalone checker.

// ------------------------------------------------------------- tree driving

struct Options {
  std::string root;           // repo root (the directory holding src/)
  bool check_headers = true;  // run the standalone-compile rule
  std::string compiler = "c++";
  std::unordered_set<std::string> known_sites;  // empty = pp::known_fault_sites()
};

/// All text rules over one file (`file` repo-relative), including stale-allow
/// detection. Exposed for the fixture tests.
[[nodiscard]] std::vector<Diagnostic> lint_text(const std::string& file,
                                                const std::string& text,
                                                const std::unordered_set<std::string>& known_sites);

/// Rule "header": `header` (an absolute or cwd-relative path to a .hpp) must
/// compile standalone: `<compiler> -std=c++20 -fsyntax-only` over a TU that
/// includes only it, with `include_dirs` on the include path. Returns
/// diagnostics naming the header (first compiler error attached) — empty
/// means self-contained.
[[nodiscard]] std::vector<Diagnostic> check_header_standalone(
    const std::string& header, const std::vector<std::string>& include_dirs,
    const std::string& compiler);

/// The full tree scan: every src/**/*.{hpp,cpp} through the text rules, plus
/// (opt.check_headers) every header under src/**, bench/, and tools/**
/// through the standalone rule. Deterministic order (sorted paths).
[[nodiscard]] std::vector<Diagnostic> lint_tree(const Options& opt);

}  // namespace pp::lint
