// ppctl — the command-line front end of the pp::api experiment facade.
//
// Experiments are data: a JSON ExperimentSpec file fully describes machine
// knobs, flows, placement, windows, seeds and what to compute, and ppctl
// executes any such file (or builds one from flags) and prints text, CSV or
// JSON. Specs with an "artifact" field reproduce the corresponding bench
// binary's stdout byte-identically. See docs/api.md for the schema.
//
//   ppctl run <spec.json>...      execute spec files (batched, deduped)
//   ppctl sweep  --flows T,..     SYN-sweep each listed flow type
//   ppctl predict --flows T,..    predict per-flow drop in the listed mix
//   ppctl solo   --flows T,..     solo-profile each listed flow type
//   ppctl corun  --flows T,..     run the listed mix and measure drops
//   ppctl show <spec.json>...     parse, validate and reprint canonically
//   ppctl stat --connect EP       print a running ppd daemon's statistics
//
// With --connect EP — a Unix socket path, or HOST:PORT for a daemon's TCP
// listener — run/sweep/predict/solo/corun execute on a running ppd daemon
// (docs/ppd.md) instead of in-process: specs are parsed and validated
// locally exactly as before, sent over the connection, and results
// print byte-identically to a direct run. Transient failures — connection
// refused, dropped mid-request, structured `overloaded` responses — retry
// on a deterministic seeded backoff schedule (--retries/--retry-base-ms/
// --retry-seed); exhaustion exits 4.
//
// Common flags:
//   --scale quick|standard|full    workload scale        (default: REPRO_SCALE)
//   --fidelity exact|sampled|streamed                    (default: SIM_FIDELITY)
//   --threads N                    host worker threads   (default: SWEEP_THREADS)
//   --cache DIR                    read/write result cache (default: PROFILE_CACHE)
//   --cache-ro DIR                 read-only secondary cache (default: PROFILE_CACHE_RO)
//   --seeds N                      averaging seeds per data point
//   --seed N                       base run seed (solo/corun)
//   --mode cache|memctrl|both      sweep contention placement
//   --format text|csv|json         output format (default: text)
//   --strict                       exit 3 if any spec fails (default: exit 1)
//
// Exit codes: 0 = all specs succeeded, 1 = some specs failed (their Results
// carry structured errors; the rest are valid), 2 = usage or parse error,
// 3 = every spec failed (or any failed under --strict), 4 = transport
// failure talking to a ppd daemon (retries exhausted, or protocol error).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "api/session.hpp"
#include "api/spec.hpp"
#include "base/fault.hpp"
#include "base/strings.hpp"
#include "figures.hpp"

namespace {

using namespace pp;

enum class Format { kText, kCsv, kJson };

struct CliOptions {
  api::SessionOptions session = api::SessionOptions::from_env();
  Format format = Format::kText;
  // Spec-field overrides applied to every spec (file-loaded or flag-built).
  std::optional<Scale> scale;
  std::optional<sim::SimFidelity> fidelity;
  std::optional<int> seeds;
  std::optional<std::uint64_t> seed;
  std::optional<core::ContentionMode> mode;
  std::vector<core::FlowSpec> flows;
  bool strict = false;  // any failed spec exits 3 instead of 1
  // Daemon mode (--connect): execute on a running ppd instead of in-process.
  // Either a Unix socket path or an IPv4 "HOST:PORT" TCP endpoint.
  api::Endpoint connect;
  bool connected = false;
  int retries = 5;
  int retry_base_ms = 25;
  std::uint64_t retry_seed = 1;
  double deadline_ms = 0;  // per-request wall-clock deadline (0 = spec budget)
};

int usage(FILE* to) {
  std::fprintf(
      to,
      "ppctl — declarative experiment runner for the pp platform\n"
      "\n"
      "usage:\n"
      "  ppctl run <spec.json>...     execute spec files (see docs/api.md)\n"
      "  ppctl show <spec.json>...    validate and reprint specs canonically\n"
      "  ppctl sweep   --flows T,..   SYN-sweep each listed flow type\n"
      "  ppctl predict --flows T,..   predict per-flow drop in the listed mix\n"
      "  ppctl solo    --flows T,..   solo-profile each listed flow type\n"
      "  ppctl corun   --flows T,..   run the listed mix and measure drops\n"
      "  ppctl stat --connect EP      print a running ppd daemon's statistics\n"
      "\n"
      "flags: --scale S --fidelity F --threads N --cache DIR --cache-ro DIR\n"
      "       --seeds N --seed N --mode cache|memctrl|both --format text|csv|json\n"
      "       --strict\n"
      "daemon flags (docs/ppd.md):\n"
      "       --connect EP     execute on the ppd at EP: a Unix socket path,\n"
      "                        or HOST:PORT for its TCP listener\n"
      "       --deadline-ms N  per-request wall-clock deadline\n"
      "       --retries N --retry-base-ms N --retry-seed N   backoff schedule\n"
      "\n"
      "flow types: IP MON FW RE VPN SYN SYN_MAX\n"
      "\n"
      "exit codes: 0 all specs ok; 1 some failed (errors are structured results);\n"
      "            2 usage/parse error; 3 all failed, or any failed with --strict;\n"
      "            4 daemon transport failure (retries exhausted / protocol error)\n");
  return to == stdout ? 0 : 2;
}

int fail(const std::string& msg) {
  std::fprintf(stderr, "ppctl: %s\n", msg.c_str());
  return 2;
}

[[nodiscard]] bool parse_flow_list(const std::string& arg, std::vector<core::FlowSpec>& out,
                                   std::string& err) {
  for (const std::string& item : split(arg, ',')) {
    const std::string name(trim(item));
    core::FlowType type = core::FlowType::kIp;
    if (!api::flow_type_from_string(name, type)) {
      err = "unknown flow type \"" + name + "\" (expected IP|MON|FW|RE|VPN|SYN|SYN_MAX)";
      return false;
    }
    out.push_back(core::FlowSpec::of(type));
  }
  if (out.empty()) {
    err = "--flows needs at least one flow type";
    return false;
  }
  return true;
}

/// Parse trailing flags; positional arguments (spec files) collect in
/// `positional`. Returns -1 to continue, or an exit code.
int parse_flags(int argc, char** argv, int start, CliOptions& cli,
                std::vector<std::string>& positional) {
  for (int i = start; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) return nullptr;
      (void)flag;
      return argv[++i];
    };
    // Numeric flags parse strictly (parse_i64): "abc", "2k", "1.5", "-3" or
    // anything out of range is a named usage error (exit 2), never a silent
    // default or a wrapped value.
    const auto int_flag = [&](const char* name, std::int64_t lo, std::int64_t hi,
                              std::int64_t& out) -> bool {
      const char* v = value(name);
      std::int64_t n = 0;
      if (v == nullptr || !parse_i64(v, n) || n < lo || n > hi) {
        std::fprintf(stderr, "ppctl: %s needs an integer in [%lld, %lld], got %s\n", name,
                     static_cast<long long>(lo), static_cast<long long>(hi),
                     v == nullptr ? "nothing" : strformat("\"%s\"", v).c_str());
        return false;
      }
      out = n;
      return true;
    };
    std::int64_t n = 0;
    if (a == "--help" || a == "-h") return usage(stdout);
    if (a == "--format") {
      const char* v = value("--format");
      if (v == nullptr) return fail("--format needs a value");
      if (std::strcmp(v, "text") == 0) cli.format = Format::kText;
      else if (std::strcmp(v, "csv") == 0) cli.format = Format::kCsv;
      else if (std::strcmp(v, "json") == 0) cli.format = Format::kJson;
      else return fail("unknown --format (expected text|csv|json)");
    } else if (a == "--scale") {
      const char* v = value("--scale");
      if (v == nullptr) return fail("--scale needs a value");
      if (std::strcmp(v, "quick") == 0) cli.scale = Scale::kQuick;
      else if (std::strcmp(v, "standard") == 0) cli.scale = Scale::kStandard;
      else if (std::strcmp(v, "full") == 0) cli.scale = Scale::kFull;
      else return fail("unknown --scale (expected quick|standard|full)");
    } else if (a == "--fidelity") {
      const char* v = value("--fidelity");
      if (v == nullptr) return fail("--fidelity needs a value");
      if (std::strcmp(v, "exact") == 0) cli.fidelity = sim::SimFidelity::kExact;
      else if (std::strcmp(v, "sampled") == 0) cli.fidelity = sim::SimFidelity::kSampled;
      else if (std::strcmp(v, "streamed") == 0) cli.fidelity = sim::SimFidelity::kStreamed;
      else return fail("unknown --fidelity (expected exact|sampled|streamed)");
    } else if (a == "--threads") {
      if (!int_flag("--threads", 1, 64, n)) return 2;
      cli.session.threads = static_cast<int>(n);
    } else if (a == "--cache") {
      const char* v = value("--cache");
      if (v == nullptr) return fail("--cache needs a directory");
      cli.session.cache_dir = v;
    } else if (a == "--cache-ro") {
      const char* v = value("--cache-ro");
      if (v == nullptr) return fail("--cache-ro needs a directory");
      cli.session.cache_dir_ro = v;
    } else if (a == "--seeds") {
      if (!int_flag("--seeds", 1, 16, n)) return 2;
      cli.seeds = static_cast<int>(n);
    } else if (a == "--seed") {
      if (!int_flag("--seed", 1, std::numeric_limits<std::int64_t>::max(), n)) return 2;
      cli.seed = static_cast<std::uint64_t>(n);
    } else if (a == "--mode") {
      const char* v = value("--mode");
      if (v == nullptr) return fail("--mode needs a value");
      if (std::strcmp(v, "cache") == 0 || std::strcmp(v, "cache-only") == 0) {
        cli.mode = core::ContentionMode::kCacheOnly;
      } else if (std::strcmp(v, "memctrl") == 0 || std::strcmp(v, "memctrl-only") == 0) {
        cli.mode = core::ContentionMode::kMemCtrlOnly;
      } else if (std::strcmp(v, "both") == 0) {
        cli.mode = core::ContentionMode::kBoth;
      } else {
        return fail("unknown --mode (expected cache|memctrl|both)");
      }
    } else if (a == "--flows") {
      const char* v = value("--flows");
      if (v == nullptr) return fail("--flows needs a comma-separated list");
      std::string err;
      if (!parse_flow_list(v, cli.flows, err)) return fail(err);
    } else if (a == "--strict") {
      cli.strict = true;
    } else if (a == "--connect") {
      const char* v = value("--connect");
      if (v == nullptr) return fail("--connect needs a socket path or HOST:PORT");
      std::string err;
      if (!api::parse_endpoint(v, cli.connect, err)) return fail("--connect: " + err);
      cli.connected = true;
    } else if (a == "--retries") {
      if (!int_flag("--retries", 1, 100, n)) return 2;
      cli.retries = static_cast<int>(n);
    } else if (a == "--retry-base-ms") {
      if (!int_flag("--retry-base-ms", 1, 60000, n)) return 2;
      cli.retry_base_ms = static_cast<int>(n);
    } else if (a == "--retry-seed") {
      if (!int_flag("--retry-seed", 0, std::numeric_limits<std::int64_t>::max(), n)) return 2;
      cli.retry_seed = static_cast<std::uint64_t>(n);
    } else if (a == "--deadline-ms") {
      if (!int_flag("--deadline-ms", 1, 86400000, n)) return 2;
      cli.deadline_ms = static_cast<double>(n);
    } else if (!a.empty() && a[0] == '-') {
      return fail("unknown flag \"" + a + "\" (see ppctl --help)");
    } else {
      positional.push_back(a);
    }
  }
  return -1;
}

/// Apply the CLI's spec-field overrides and re-validate the combined spec
/// (by round-tripping its canonical form through the strict parser), so a
/// flag that contradicts the spec's kind — `--mode` on a corun file,
/// `--seed` on a sweep — is rejected exactly like the same field written in
/// the file, never half-applied.
[[nodiscard]] bool override_spec(const CliOptions& cli, api::ExperimentSpec& spec,
                                 std::string& err) {
  if (cli.scale.has_value()) spec.scale = cli.scale;
  if (cli.fidelity.has_value()) spec.fidelity = cli.fidelity;
  if (cli.seeds.has_value()) spec.seeds = *cli.seeds;
  if (cli.seed.has_value()) spec.seed = *cli.seed;
  if (cli.mode.has_value()) spec.mode = *cli.mode;
  const std::optional<api::ExperimentSpec> checked =
      api::ExperimentSpec::parse(spec.to_json(), &err);
  if (!checked.has_value()) {
    err = "flags conflict with the spec: " + err;
    return false;
  }
  spec = *checked;
  return true;
}

[[nodiscard]] bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

void print_result(const api::Result& r, Format format) {
  switch (format) {
    case Format::kText:
      std::printf("%s\n", r.to_text().c_str());
      break;
    case Format::kCsv:
      std::printf("%s", r.to_csv().c_str());
      break;
    case Format::kJson:
      std::printf("%s", r.to_json().c_str());
      break;
  }
  std::fflush(stdout);
}

[[nodiscard]] api::ClientOptions client_options(const CliOptions& cli) {
  api::ClientOptions copts;
  copts.endpoint = cli.connect;
  copts.retries = cli.retries;
  copts.retry_base_ms = cli.retry_base_ms;
  copts.retry_seed = cli.retry_seed;
  return copts;
}

int transport_failure(const api::Client& client, const Status& st) {
  std::fprintf(stderr, "ppctl: daemon transport failure after %zu attempt(s): %s at %s: %s\n",
               client.slept_ms().size() + 1, to_string(st.kind), st.site.c_str(),
               st.detail.c_str());
  return 4;
}

/// Daemon-mode run_specs: each spec becomes one framed request to the ppd
/// at cli.connect; bodies print verbatim (byte-identical to a direct run)
/// and each response's store delta prints in the familiar stderr format.
/// Artifact specs go first, matching the direct path's ordering.
int run_specs_connected(const CliOptions& cli, const std::vector<api::ExperimentSpec>& specs) {
  api::Client client(client_options(cli));
  const char* fmt = cli.format == Format::kText ? "text"
                    : cli.format == Format::kCsv ? "csv"
                                                 : "json";
  std::vector<const api::ExperimentSpec*> ordered;
  for (const api::ExperimentSpec& s : specs) {
    if (!s.artifact.empty()) ordered.push_back(&s);
  }
  for (const api::ExperimentSpec& s : specs) {
    if (s.artifact.empty()) ordered.push_back(&s);
  }
  std::size_t failed = 0;
  for (const api::ExperimentSpec* spec : ordered) {
    const bool artifact = !spec->artifact.empty();
    if (artifact && cli.format != Format::kText) {
      std::fprintf(stderr,
                   "ppctl: note: artifact \"%s\" always prints the bench's text output; "
                   "--format does not apply\n",
                   spec->artifact.c_str());
    }
    api::Reply reply;
    const Status st =
        client.run(spec->to_json(), artifact ? "text" : fmt, cli.deadline_ms, reply);
    if (!st.ok()) return transport_failure(client, st);
    if (reply.error.has_value()) {
      std::fprintf(stderr, "ppctl: daemon refused spec: %s at %s: %s\n",
                   to_string(reply.error->kind), reply.error->site.c_str(),
                   reply.error->detail.c_str());
      ++failed;
      continue;
    }
    std::fwrite(reply.body.data(), 1, reply.body.size(), stdout);
    std::fflush(stdout);
    if (reply.failed) ++failed;
    std::fprintf(stderr, "[ppctl] profile store: %s\n", reply.store_line.c_str());
  }
  if (failed == 0) return 0;
  std::fprintf(stderr, "[ppctl] %zu of %zu specs failed\n", failed, specs.size());
  return failed == specs.size() || cli.strict ? 3 : 1;
}

int cmd_stat(const CliOptions& cli) {
  if (!cli.connected) return fail("stat: requires --connect SOCK|HOST:PORT (a running ppd)");
  api::Client client(client_options(cli));
  std::string text;
  const Status st = client.stat(text);
  if (!st.ok()) return transport_failure(client, st);
  std::printf("%s", text.c_str());
  return 0;
}

int run_specs(const CliOptions& cli, std::vector<api::ExperimentSpec> specs) {
  if (cli.connected) return run_specs_connected(cli, specs);
  // Artifact specs render canned bench stdout (byte-identical to the bench
  // binary, always text — so they print first, whatever the argument
  // order); generic specs execute through one Session as a deduped batch.
  std::vector<api::ExperimentSpec> generic;
  for (const api::ExperimentSpec& spec : specs) {
    if (spec.artifact.empty()) {
      generic.push_back(spec);
      continue;
    }
    if (cli.format != Format::kText) {
      std::fprintf(stderr,
                   "ppctl: note: artifact \"%s\" always prints the bench's text output; "
                   "--format does not apply\n",
                   spec.artifact.c_str());
    }
    const int rc = pp::bench::run_artifact(spec, cli.session);
    if (rc != 0) return rc < 0 ? fail("unknown artifact \"" + spec.artifact + "\"") : rc;
  }
  if (generic.empty()) return 0;

  api::Session session(cli.session);
  const std::vector<api::Result> results = session.run_many(generic);
  std::size_t failed = 0;
  for (const api::Result& r : results) {
    if (!r.ok()) ++failed;
    print_result(r, cli.format);
  }
  std::fprintf(stderr, "[ppctl] profile store: %s\n", session.store().stats_line().c_str());
  if (FaultInjector::global().enabled()) {
    std::fprintf(stderr, "[ppctl] faults: %s\n", FaultInjector::global().stats_line().c_str());
  }
  if (failed == 0) return 0;
  std::fprintf(stderr, "[ppctl] %zu of %zu specs failed\n", failed, results.size());
  return failed == results.size() || cli.strict ? 3 : 1;
}

int cmd_run(const CliOptions& cli, const std::vector<std::string>& files) {
  if (files.empty()) return fail("run: no spec files given");
  std::vector<api::ExperimentSpec> specs;
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, text)) return fail("cannot read " + path);
    std::string err;
    std::optional<api::ExperimentSpec> spec = api::ExperimentSpec::parse(text, &err);
    if (!spec.has_value()) return fail(path + ": " + err);
    if (!override_spec(cli, *spec, err)) return fail(path + ": " + err);
    specs.push_back(std::move(*spec));
  }
  return run_specs(cli, std::move(specs));
}

int cmd_show(const CliOptions& cli, const std::vector<std::string>& files) {
  if (files.empty()) return fail("show: no spec files given");
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, text)) return fail("cannot read " + path);
    std::string err;
    std::optional<api::ExperimentSpec> spec = api::ExperimentSpec::parse(text, &err);
    if (!spec.has_value()) return fail(path + ": " + err);
    if (!override_spec(cli, *spec, err)) return fail(path + ": " + err);
    std::printf("%s", spec->to_json().c_str());
  }
  return 0;
}

int cmd_inline(const CliOptions& cli, api::ExperimentKind kind) {
  if (cli.flows.empty()) {
    return fail(std::string(to_string(kind)) + ": requires --flows (e.g. --flows MON,VPN)");
  }
  api::ExperimentSpec spec;
  spec.kind = kind;
  spec.flows = cli.flows;
  std::string err;
  if (!override_spec(cli, spec, err)) return fail(err);
  return run_specs(cli, {spec});
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage(stdout);

  CliOptions cli;
  std::vector<std::string> positional;
  const int rc = parse_flags(argc, argv, 2, cli, positional);
  if (rc >= 0) return rc;

  if (cmd == "run") return cmd_run(cli, positional);
  if (cmd == "show") return cmd_show(cli, positional);
  if (cmd == "stat") return cmd_stat(cli);
  if (cmd == "sweep") return cmd_inline(cli, api::ExperimentKind::kSweep);
  if (cmd == "predict") return cmd_inline(cli, api::ExperimentKind::kPredict);
  if (cmd == "solo") return cmd_inline(cli, api::ExperimentKind::kSolo);
  if (cmd == "corun") return cmd_inline(cli, api::ExperimentKind::kCorun);
  return fail("unknown command \"" + cmd + "\" (see ppctl --help)");
}
